// Package diff implements semantic policy-change impact analysis: it
// compares two deployment states (policy registries + report definitions
// + catalog) and reports, per (report, role, purpose) triple, how the
// change moves the privacy boundary. The comparison is static and
// data-flow-free — it diffs the *residual render programs* the compiler
// produces for each triple (compile.Program), not the raw rule text, so
// a rewrite that preserves semantics is silent while a cosmetically
// small edit that widens disclosure is loud.
//
// Impacts carry stable codes:
//
//	PD000  compiler translation divergence (see Validate)
//	PD001  NEW-ALLOW privilege expansion (new/uncovered allow, lifted block)
//	PD002  NEW-DENY regression (new block/mask/deny, removed report)
//	PD003  aggregation threshold loosened / tightened
//	PD004  row filter weakened / strengthened
//	PD005  column release plan widened (mask dropped, condition dropped)
//
// Expansions are error severity; restrictions are info or warning. The
// plabid reload gate refuses manifests whose diff contains error-severity
// impacts unless explicitly overridden.
package diff

import (
	"fmt"
	"sort"
	"strings"

	"plabi/internal/compile"
	"plabi/internal/enforce"
	"plabi/internal/lint"
	"plabi/internal/policy"
	"plabi/internal/provenance"
	"plabi/internal/report"
	"plabi/internal/sql"
)

// Impact codes.
const (
	CodeTranslation = "PD000" // compiled program diverges from interpreted composite
	CodeNewAllow    = "PD001" // NEW-ALLOW privilege expansion
	CodeNewDeny     = "PD002" // NEW-DENY regression
	CodeThreshold   = "PD003" // aggregation threshold changed
	CodeRowFilter   = "PD004" // row filter changed
	CodeColumnPlan  = "PD005" // column release plan widened
)

// State is one deployment snapshot: everything needed to compile the
// residual program of every (report, role, purpose) triple.
type State struct {
	Policies *policy.Registry
	Catalog  *sql.Catalog
	Reports  []*report.Definition
	// Scopes maps report id -> extra meta-report PLA scopes (the
	// engine's report->meta assignment).
	Scopes map[string][]string
}

// newEnforcer builds a throwaway enforcer over the state. Only the
// static compilation path is used, so no tracer state accumulates.
func (s *State) newEnforcer() *enforce.ReportEnforcer {
	enf := enforce.NewReportEnforcer(s.Policies, s.Catalog, provenance.NewTracer())
	if len(s.Scopes) > 0 {
		enf.SetExtraScopes(s.Scopes)
	}
	return enf
}

func (s *State) report(id string) *report.Definition {
	for _, d := range s.Reports {
		if d.ID == id {
			return d
		}
	}
	return nil
}

// Impact is one semantic policy-change finding for a (report, role,
// purpose) triple.
type Impact struct {
	Code     string
	Severity lint.Severity
	Report   string
	Role     string // "" = report has no declared roles
	Purpose  string
	Subject  string // column, threshold key, filter expression, rule attribute
	Message  string
	PLAs     []string
	Pos      policy.Pos // position of the responsible rule, when attributable
}

// Finding renders the impact in the lint vocabulary so the existing
// text/JSON renderers and severity filters apply unchanged.
func (im Impact) Finding() lint.Finding {
	role, purpose := im.Role, im.Purpose
	if role == "" {
		role = "*"
	}
	if purpose == "" {
		purpose = "*"
	}
	triple := im.Report + "/" + strings.ToLower(role) + "/" + strings.ToLower(purpose)
	subj := triple
	if im.Subject != "" {
		subj += ": " + im.Subject
	}
	return lint.Finding{
		Code: im.Code, Severity: im.Severity, Level: policy.LevelReport,
		Pos: im.Pos, Subject: subj, Message: triple + ": " + im.Message,
		PLAs: append([]string(nil), im.PLAs...),
	}
}

// Findings converts impacts to lint findings in the canonical lint order.
func Findings(imps []Impact) []lint.Finding {
	fs := make([]lint.Finding, len(imps))
	for i, im := range imps {
		fs[i] = im.Finding()
	}
	lint.Sort(fs)
	return fs
}

// MaxSeverity returns the highest severity among the impacts (SevInfo
// when empty).
func MaxSeverity(imps []Impact) lint.Severity {
	max := lint.SevInfo
	for _, im := range imps {
		if im.Severity > max {
			max = im.Severity
		}
	}
	return max
}

// Expansions filters the error-severity impacts — the privilege
// expansions the reload gate refuses.
func Expansions(imps []Impact) []Impact {
	var out []Impact
	for _, im := range imps {
		if im.Severity >= lint.SevError {
			out = append(out, im)
		}
	}
	return out
}

// Diff compares two deployment states and returns the impact records,
// deterministically ordered by (report, role, code, subject, message).
func Diff(oldS, newS *State) ([]Impact, error) {
	oldE, newE := oldS.newEnforcer(), newS.newEnforcer()
	var imps []Impact

	ids := map[string]bool{}
	for _, d := range oldS.Reports {
		ids[d.ID] = true
	}
	for _, d := range newS.Reports {
		ids[d.ID] = true
	}
	sorted := make([]string, 0, len(ids))
	for id := range ids {
		sorted = append(sorted, id)
	}
	sort.Strings(sorted)

	for _, id := range sorted {
		od, nd := oldS.report(id), newS.report(id)
		switch {
		case od == nil:
			got, err := newReport(newE, nd)
			if err != nil {
				return nil, err
			}
			imps = append(imps, got...)
		case nd == nil:
			for _, role := range tripleRoles(od, nil) {
				imps = append(imps, Impact{
					Code: CodeNewDeny, Severity: lint.SevWarning,
					Report: id, Role: role, Purpose: od.Purpose,
					Message: fmt.Sprintf("report %q removed: consumers lose access", id),
				})
			}
		default:
			got, err := diffReport(oldE, newE, od, nd)
			if err != nil {
				return nil, err
			}
			imps = append(imps, got...)
		}
	}
	sortImpacts(imps)
	return imps, nil
}

// newReport classifies every triple of a report that exists only in the
// new state: delivering data where nothing was delivered before is an
// expansion; a statically blocked addition is inert.
func newReport(newE *enforce.ReportEnforcer, nd *report.Definition) ([]Impact, error) {
	var imps []Impact
	for _, role := range tripleRoles(nil, nd) {
		prog, _, err := newE.ProgramFor(nd, role, nd.Purpose)
		if err != nil {
			return nil, fmt.Errorf("diff: compile new %s/%s: %w", nd.ID, role, err)
		}
		if prog.Blocked() {
			imps = append(imps, Impact{
				Code: CodeNewAllow, Severity: lint.SevInfo,
				Report: nd.ID, Role: role, Purpose: nd.Purpose,
				Message: fmt.Sprintf("report %q is new but statically blocked", nd.ID),
			})
			continue
		}
		imps = append(imps, Impact{
			Code: CodeNewAllow, Severity: lint.SevError,
			Report: nd.ID, Role: role, Purpose: nd.Purpose,
			Message: fmt.Sprintf("report %q is new and delivers data to role %q", nd.ID, displayRole(role)),
		})
	}
	return imps, nil
}

// diffReport compares one report present in both states across the union
// of its declared roles.
func diffReport(oldE, newE *enforce.ReportEnforcer, od, nd *report.Definition) ([]Impact, error) {
	ocomp, _, err := oldE.CompositeFor(od)
	if err != nil {
		return nil, fmt.Errorf("diff: compose old %s: %w", od.ID, err)
	}
	ncomp, _, err := newE.CompositeFor(nd)
	if err != nil {
		return nil, fmt.Errorf("diff: compose new %s: %w", nd.ID, err)
	}
	var imps []Impact
	if !strings.EqualFold(od.Purpose, nd.Purpose) {
		imps = append(imps, Impact{
			Code: CodeNewDeny, Severity: lint.SevWarning,
			Report: nd.ID, Purpose: nd.Purpose,
			Message: fmt.Sprintf("report purpose changed from %q to %q", od.Purpose, nd.Purpose),
		})
	}
	for _, role := range tripleRoles(od, nd) {
		P, _, err := oldE.ProgramFor(od, role, od.Purpose)
		if err != nil {
			return nil, fmt.Errorf("diff: compile old %s/%s: %w", od.ID, role, err)
		}
		Q, _, err := newE.ProgramFor(nd, role, nd.Purpose)
		if err != nil {
			return nil, fmt.Errorf("diff: compile new %s/%s: %w", nd.ID, role, err)
		}
		t := triple{report: nd.ID, role: role, purpose: nd.Purpose}
		imps = append(imps, diffStatic(t, P, Q)...)
		imps = append(imps, diffThresholds(t, P, Q)...)
		imps = append(imps, diffFilters(t, P, Q)...)
		imps = append(imps, diffColumns(t, P, Q)...)
		imps = append(imps, diffRules(t, ocomp, ncomp)...)
	}
	return imps, nil
}

type triple struct{ report, role, purpose string }

func (t triple) impact(code string, sev lint.Severity, subject, msg string, plas []string) Impact {
	return Impact{Code: code, Severity: sev, Report: t.report, Role: t.role,
		Purpose: t.purpose, Subject: subject, Message: msg, PLAs: plas}
}

// diffStatic compares the folded block verdicts. Mask verdicts are
// intentionally skipped here — they mirror the column plans and are
// diffed (with more context) by diffColumns.
func diffStatic(t triple, P, Q *compile.Program) []Impact {
	oldBlocks := blockVerdicts(P)
	newBlocks := blockVerdicts(Q)
	var imps []Impact
	for _, key := range sortedKeys(oldBlocks) {
		if _, ok := newBlocks[key]; ok {
			continue
		}
		v := oldBlocks[key]
		sev, note := lint.SevError, "report now renders"
		if Q.Blocked() {
			sev, note = lint.SevInfo, "report remains blocked by another verdict"
		}
		imps = append(imps, t.impact(CodeNewAllow, sev, v.Subject,
			fmt.Sprintf("static %s block on %q lifted: %s", v.Rule, v.Subject, note), v.PLAs))
	}
	for _, key := range sortedKeys(newBlocks) {
		if _, ok := oldBlocks[key]; ok {
			continue
		}
		v := newBlocks[key]
		imps = append(imps, t.impact(CodeNewDeny, lint.SevWarning, v.Subject,
			fmt.Sprintf("new static %s block on %q: report no longer renders for this triple", v.Rule, v.Subject), v.PLAs))
	}
	return imps
}

func blockVerdicts(p *compile.Program) map[string]compile.Verdict {
	out := map[string]compile.Verdict{}
	for _, v := range p.Static {
		if v.Outcome == "block" {
			out[v.Rule+"|"+v.Subject] = v
		}
	}
	return out
}

// diffThresholds compares the baked aggregation thresholds per grouping
// attribute: a lowered or dropped minimum is an expansion.
func diffThresholds(t triple, P, Q *compile.Program) []Impact {
	oldT := thresholdMap(P)
	newT := thresholdMap(Q)
	var imps []Impact
	for _, by := range sortedKeys(oldT) {
		o := oldT[by]
		n, ok := newT[by]
		switch {
		case !ok:
			// A report that stopped aggregating folds its thresholds
			// into a static block — strictly more restrictive, and
			// already reported by diffStatic.
			if !Q.Aggregated && Q.Blocked() {
				continue
			}
			imps = append(imps, t.impact(CodeThreshold, lint.SevError, thresholdSubject(by),
				fmt.Sprintf("aggregation threshold min %d by %s removed", o.Min, thresholdSubject(by)), o.PLAs))
		case n.Min < o.Min:
			imps = append(imps, t.impact(CodeThreshold, lint.SevError, thresholdSubject(by),
				fmt.Sprintf("aggregation threshold by %s loosened: min %d -> %d", thresholdSubject(by), o.Min, n.Min), n.PLAs))
		case n.Min > o.Min:
			imps = append(imps, t.impact(CodeThreshold, lint.SevInfo, thresholdSubject(by),
				fmt.Sprintf("aggregation threshold by %s tightened: min %d -> %d", thresholdSubject(by), o.Min, n.Min), n.PLAs))
		}
	}
	for _, by := range sortedKeys(newT) {
		if _, ok := oldT[by]; ok {
			continue
		}
		n := newT[by]
		imps = append(imps, t.impact(CodeThreshold, lint.SevInfo, thresholdSubject(by),
			fmt.Sprintf("new aggregation threshold min %d by %s", n.Min, thresholdSubject(by)), n.PLAs))
	}
	return imps
}

func thresholdMap(p *compile.Program) map[string]compile.Threshold {
	out := map[string]compile.Threshold{}
	for _, th := range p.Thresholds {
		out[th.By] = th
	}
	return out
}

func thresholdSubject(by string) string {
	if by == "" {
		return "rows"
	}
	return by
}

// diffFilters compares the pre-bound row filters by expression text.
func diffFilters(t triple, P, Q *compile.Program) []Impact {
	oldF := filterSet(P)
	newF := filterSet(Q)
	var imps []Impact
	for _, expr := range sortedKeys(oldF) {
		if _, ok := newF[expr]; ok {
			continue
		}
		imps = append(imps, t.impact(CodeRowFilter, lint.SevError, expr,
			fmt.Sprintf("row filter %s dropped: previously suppressed rows are released", expr), P.FilterPLAs))
	}
	for _, expr := range sortedKeys(newF) {
		if _, ok := oldF[expr]; ok {
			continue
		}
		imps = append(imps, t.impact(CodeRowFilter, lint.SevInfo, expr,
			fmt.Sprintf("new row filter %s", expr), Q.FilterPLAs))
	}
	return imps
}

func filterSet(p *compile.Program) map[string]bool {
	out := map[string]bool{}
	for _, f := range p.Filters {
		out[fmt.Sprint(f.Expr)] = true
	}
	return out
}

// diffColumns compares the static column release plans: a mask dropped,
// a release condition dropped, or a fresh raw column is a widening.
func diffColumns(t triple, P, Q *compile.Program) []Impact {
	oldC := columnMap(P)
	newC := columnMap(Q)
	var imps []Impact
	for _, name := range sortedKeys(oldC) {
		o := oldC[name]
		n, ok := newC[name]
		if !ok {
			imps = append(imps, t.impact(CodeNewDeny, lint.SevWarning, name,
				fmt.Sprintf("column %q removed from the report", name), nil))
			continue
		}
		switch {
		case o.Masked && !n.Masked && !n.Aggregate:
			imps = append(imps, t.impact(CodeColumnPlan, lint.SevError, name,
				fmt.Sprintf("column %q released: previously masked (%s)", name, o.Rule), o.PLAs))
		case !o.Masked && n.Masked:
			imps = append(imps, t.impact(CodeNewDeny, lint.SevWarning, name,
				fmt.Sprintf("column %q now masked (%s)", name, n.Rule), n.PLAs))
		case o.Aggregate && !n.Aggregate && !n.Masked:
			imps = append(imps, t.impact(CodeColumnPlan, lint.SevError, name,
				fmt.Sprintf("column %q now released as raw values (was aggregate)", name), nil))
		case !o.Aggregate && n.Aggregate && !o.Masked:
			imps = append(imps, t.impact(CodeColumnPlan, lint.SevInfo, name,
				fmt.Sprintf("column %q now aggregated (was raw)", name), nil))
		}
		if !o.Masked && !n.Masked {
			imps = append(imps, diffConditions(t, name, o, n)...)
		}
	}
	for _, name := range sortedKeys(newC) {
		if _, ok := oldC[name]; ok {
			continue
		}
		n := newC[name]
		switch {
		case n.Masked:
			imps = append(imps, t.impact(CodeColumnPlan, lint.SevInfo, name,
				fmt.Sprintf("new column %q (masked)", name), n.PLAs))
		case n.Aggregate:
			imps = append(imps, t.impact(CodeColumnPlan, lint.SevInfo, name,
				fmt.Sprintf("new column %q (aggregate, threshold-governed)", name), nil))
		default:
			imps = append(imps, t.impact(CodeColumnPlan, lint.SevError, name,
				fmt.Sprintf("new column %q released as raw values", name), nil))
		}
	}
	return imps
}

// diffConditions compares the intensional release conditions of one
// released column: dropping a condition releases previously guarded
// cells.
func diffConditions(t triple, name string, o, n compile.ColumnPlan) []Impact {
	oldC := stringSet(o.Conditions)
	newC := stringSet(n.Conditions)
	var imps []Impact
	for _, cond := range sortedKeys(oldC) {
		if _, ok := newC[cond]; ok {
			continue
		}
		imps = append(imps, t.impact(CodeColumnPlan, lint.SevError, name,
			fmt.Sprintf("release condition %s on column %q dropped", cond, name), n.PLAs))
	}
	for _, cond := range sortedKeys(newC) {
		if _, ok := oldC[cond]; ok {
			continue
		}
		imps = append(imps, t.impact(CodeColumnPlan, lint.SevInfo, name,
			fmt.Sprintf("new release condition %s on column %q", cond, name), n.PLAs))
	}
	return imps
}

func columnMap(p *compile.Program) map[string]compile.ColumnPlan {
	out := map[string]compile.ColumnPlan{}
	for _, c := range p.Columns {
		out[c.Name] = c
	}
	return out
}

// ownedRule is an access rule tagged with its PLA of origin.
type ownedRule struct {
	pla   string
	owner string
	r     policy.AccessRule
}

// diffRules is the symbolic leg: independent of what the current query
// projects, a new allow no previous allow covers (or a deny no remaining
// deny covers) moves the boundary for every future query under the same
// composite. Covering uses RuleCoversWhen, so a condition change is a
// move, not a rewrite.
func diffRules(t triple, ocomp, ncomp *policy.Composite) []Impact {
	oldAllow, oldDeny := accessRules(ocomp, t.role, t.purpose)
	newAllow, newDeny := accessRules(ncomp, t.role, t.purpose)
	var imps []Impact
	for _, nr := range newAllow {
		if coveredByOwner(oldAllow, nr) {
			continue
		}
		im := t.impact(CodeNewAllow, lint.SevError, nr.r.Attribute,
			fmt.Sprintf("new allow of attribute %q (pla %q) not covered by any previous allow", nr.r.Attribute, nr.pla),
			[]string{nr.pla})
		im.Pos = nr.r.Pos
		imps = append(imps, im)
	}
	for _, or := range oldDeny {
		if coveredBy(newDeny, or.r) {
			continue
		}
		imps = append(imps, t.impact(CodeNewAllow, lint.SevError, or.r.Attribute,
			fmt.Sprintf("deny of attribute %q (pla %q) removed: no remaining deny covers it", or.r.Attribute, or.pla),
			[]string{or.pla}))
	}
	for _, nr := range newDeny {
		if coveredBy(oldDeny, nr.r) {
			continue
		}
		im := t.impact(CodeNewDeny, lint.SevWarning, nr.r.Attribute,
			fmt.Sprintf("new deny of attribute %q (pla %q)", nr.r.Attribute, nr.pla),
			[]string{nr.pla})
		im.Pos = nr.r.Pos
		imps = append(imps, im)
	}
	for _, or := range oldAllow {
		if coveredByOwner(newAllow, or) {
			continue
		}
		imps = append(imps, t.impact(CodeNewDeny, lint.SevWarning, or.r.Attribute,
			fmt.Sprintf("allow of attribute %q (pla %q) removed or narrowed", or.r.Attribute, or.pla),
			[]string{or.pla}))
	}
	return imps
}

// accessRules collects the composite's access rules that can apply to
// the triple's (role, purpose), split by effect. An empty triple role
// matches every rule (conservative: report all movements).
func accessRules(comp *policy.Composite, role, purpose string) (allow, deny []ownedRule) {
	for _, p := range comp.PLAs {
		for _, r := range p.Access {
			if !ruleAppliesTo(r, role, purpose) {
				continue
			}
			if r.Effect == policy.Allow {
				allow = append(allow, ownedRule{pla: p.ID, owner: p.Owner, r: r})
			} else {
				deny = append(deny, ownedRule{pla: p.ID, owner: p.Owner, r: r})
			}
		}
	}
	return allow, deny
}

func ruleAppliesTo(r policy.AccessRule, role, purpose string) bool {
	if role != "" && len(r.Roles) > 0 && !containsFold(r.Roles, role) {
		return false
	}
	if purpose != "" && len(r.Purposes) > 0 && !containsFold(r.Purposes, purpose) {
		return false
	}
	return true
}

func coveredBy(set []ownedRule, r policy.AccessRule) bool {
	for _, s := range set {
		if policy.RuleCoversWhen(s.r, r) {
			return true
		}
	}
	return false
}

// coveredByOwner is coveredBy restricted to rules of the same owner.
// Used for allow coverage: closed-world access is per owner, so one
// owner's allow (even `allow attribute *`) cannot release data another
// owner's rules govern — only a matching allow by the same owner makes
// a new allow a covered rewrite rather than an expansion. Deny coverage
// stays cross-owner: under most-restrictive-wins, any owner's remaining
// deny keeps the restriction alive.
func coveredByOwner(set []ownedRule, or ownedRule) bool {
	for _, s := range set {
		if s.owner == or.owner && policy.RuleCoversWhen(s.r, or.r) {
			return true
		}
	}
	return false
}

func containsFold(list []string, s string) bool {
	for _, v := range list {
		if strings.EqualFold(v, s) {
			return true
		}
	}
	return false
}

// tripleRoles returns the union of the declared roles of both
// definitions (either may be nil), lowercased, sorted, defaulting to the
// anonymous role when no roles are declared anywhere.
func tripleRoles(od, nd *report.Definition) []string {
	seen := map[string]bool{}
	var roles []string
	add := func(d *report.Definition) {
		if d == nil {
			return
		}
		for _, r := range d.Roles {
			lr := strings.ToLower(r)
			if !seen[lr] {
				seen[lr] = true
				roles = append(roles, lr)
			}
		}
	}
	add(od)
	add(nd)
	if len(roles) == 0 {
		return []string{""}
	}
	sort.Strings(roles)
	return roles
}

func displayRole(role string) string {
	if role == "" {
		return "*"
	}
	return role
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func stringSet(list []string) map[string]bool {
	out := map[string]bool{}
	for _, s := range list {
		out[s] = true
	}
	return out
}

func sortImpacts(imps []Impact) {
	sort.SliceStable(imps, func(i, j int) bool {
		a, b := imps[i], imps[j]
		if a.Report != b.Report {
			return a.Report < b.Report
		}
		if a.Role != b.Role {
			return a.Role < b.Role
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		if a.Subject != b.Subject {
			return a.Subject < b.Subject
		}
		return a.Message < b.Message
	})
}
