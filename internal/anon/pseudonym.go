package anon

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"math/rand"

	"plabi/internal/relation"
)

// Pseudonymizer replaces identifying values with stable keyed pseudonyms:
// the same input always maps to the same pseudonym (so joins and
// aggregations over the pseudonymized column still work), but the mapping
// cannot be inverted without the key.
type Pseudonymizer struct {
	key []byte
}

// NewPseudonymizer creates a pseudonymizer with the given secret key.
func NewPseudonymizer(key []byte) *Pseudonymizer {
	k := make([]byte, len(key))
	copy(k, key)
	return &Pseudonymizer{key: k}
}

// Pseudonym maps one value to its pseudonym; NULL stays NULL.
func (p *Pseudonymizer) Pseudonym(v relation.Value) relation.Value {
	if v.IsNull() {
		return v
	}
	mac := hmac.New(sha256.New, p.key)
	mac.Write([]byte(v.Key()))
	sum := mac.Sum(nil)
	return relation.Str("anon-" + hex.EncodeToString(sum[:6]))
}

// PseudonymizeColumn returns a copy of t with the named column replaced by
// pseudonyms; lineage and column origins are preserved.
func (p *Pseudonymizer) PseudonymizeColumn(t *relation.Table, col string) (*relation.Table, error) {
	return mapColumn(t, col, relation.TString, p.Pseudonym)
}

// SuppressColumn returns a copy of t with the named column replaced by
// NULLs.
func SuppressColumn(t *relation.Table, col string) (*relation.Table, error) {
	return mapColumn(t, col, relation.TNull, func(relation.Value) relation.Value {
		return relation.Null()
	})
}

// GeneralizeColumn returns a copy of t with the named column generalized
// to the given level of hierarchy h.
func GeneralizeColumn(t *relation.Table, col string, h Hierarchy, level int) (*relation.Table, error) {
	return mapColumn(t, col, relation.TString, func(v relation.Value) relation.Value {
		return h.Generalize(v, level)
	})
}

// PerturbColumn adds deterministic (seeded), zero-sum numeric noise of up
// to ±pct percent of the column's value range to the named column: the
// column total is preserved exactly for floats and up to rounding for
// ints, so aggregate reports keep their shape while individual values are
// masked (Verykios et al. [13]).
func PerturbColumn(t *relation.Table, col string, pct int, seed int64) (*relation.Table, error) {
	ci := t.Schema.Index(col)
	if ci < 0 {
		return nil, colErr(t, col)
	}
	// Compute value range for noise scaling.
	var lo, hi float64
	first := true
	for _, r := range t.Rows {
		f, ok := r[ci].AsFloat()
		if !ok {
			continue
		}
		if first {
			lo, hi = f, f
			first = false
			continue
		}
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	scale := (hi - lo) * float64(pct) / 100
	rng := rand.New(rand.NewSource(seed))
	noise := make([]float64, len(t.Rows))
	var sum float64
	n := 0
	for i, r := range t.Rows {
		if _, ok := r[ci].AsFloat(); !ok {
			continue
		}
		noise[i] = (rng.Float64()*2 - 1) * scale
		sum += noise[i]
		n++
	}
	if n > 0 {
		mean := sum / float64(n)
		for i := range noise {
			noise[i] -= mean // zero-sum correction preserves the total
		}
	}
	i := -1
	return mapColumn(t, col, t.Schema.Columns[ci].Type, func(v relation.Value) relation.Value {
		i++
		f, ok := v.AsFloat()
		if !ok {
			return v
		}
		perturbed := f + noise[i]
		if v.Kind == relation.TInt {
			return relation.Int(int64(perturbed + 0.5))
		}
		return relation.Float(perturbed)
	})
}

// mapColumn applies fn to every value of the named column, returning a new
// table with preserved lineage and origins. newType of TNull keeps the
// original column type.
func mapColumn(t *relation.Table, col string, newType relation.Type, fn func(relation.Value) relation.Value) (*relation.Table, error) {
	ci := t.Schema.Index(col)
	if ci < 0 {
		return nil, colErr(t, col)
	}
	out := &relation.Table{Name: t.Name, Schema: t.Schema.Clone()}
	if newType != relation.TNull {
		out.Schema.Columns[ci].Type = newType
	}
	out.ColOrigin = make([]relation.ColRefSet, t.Schema.Len())
	for c := range out.ColOrigin {
		out.ColOrigin[c] = t.ColumnOrigin(c)
	}
	for ri, r := range t.Rows {
		nr := r.Clone()
		nr[ci] = fn(r[ci])
		out.Rows = append(out.Rows, nr)
		out.Lineage = append(out.Lineage, t.RowLineage(ri))
	}
	return out, nil
}

func colErr(t *relation.Table, col string) error {
	return &UnknownColumnError{Table: t.Name, Column: col}
}

// UnknownColumnError reports a reference to a missing column.
type UnknownColumnError struct {
	Table  string
	Column string
}

// Error implements error.
func (e *UnknownColumnError) Error() string {
	return "anon: unknown column " + e.Column + " in table " + e.Table
}
