package diff

import (
	"fmt"
	"sort"
	"strings"

	"plabi/internal/compile"
	"plabi/internal/lint"
	"plabi/internal/policy"
	"plabi/internal/report"
	"plabi/internal/sql"
)

// Validate is the translation-validation pass: for every (report, role,
// purpose) triple in the state it recomputes the interpreted products —
// composite PLA set, merged thresholds, bound row filters, static
// verdicts, per-column mask decisions — directly from the composite, and
// cross-checks them against the compiled residual program. Any
// divergence is a PD000 compiler-soundness finding: the partial
// evaluator folded something the interpreter would decide differently.
//
// The recomputation deliberately does not reuse the enforcer's folded
// plan products (they are the compiler's *input*); it re-derives them
// from the same public composite primitives the runtime decisions use.
func Validate(s *State) ([]Impact, error) {
	enf := s.newEnforcer()
	var imps []Impact
	defs := append([]*report.Definition(nil), s.Reports...)
	sort.Slice(defs, func(i, j int) bool { return defs[i].ID < defs[j].ID })
	for _, def := range defs {
		comp, prof, err := enf.CompositeFor(def)
		if err != nil {
			return nil, fmt.Errorf("diff: validate compose %s: %w", def.ID, err)
		}
		sel, err := def.Parse()
		if err != nil {
			return nil, fmt.Errorf("diff: validate parse %s: %w", def.ID, err)
		}
		for _, role := range tripleRoles(def, nil) {
			prog, _, err := enf.ProgramFor(def, role, def.Purpose)
			if err != nil {
				return nil, fmt.Errorf("diff: validate compile %s/%s: %w", def.ID, role, err)
			}
			t := triple{report: def.ID, role: role, purpose: def.Purpose}
			v := validator{t: t, s: s, comp: comp, prof: prof, sel: sel, prog: prog,
				role: role, purpose: def.Purpose}
			imps = append(imps, v.run()...)
		}
	}
	sortImpacts(imps)
	return imps, nil
}

type validator struct {
	t             triple
	s             *State
	comp          *policy.Composite
	prof          *sql.Profile
	sel           *sql.SelectStmt
	prog          *compile.Program
	role, purpose string
}

func (v *validator) diverge(subject, msg string) Impact {
	return v.t.impact(CodeTranslation, lint.SevError, subject,
		"compiled program diverges from interpreted composite: "+msg, v.prog.PLAs)
}

func (v *validator) run() []Impact {
	var imps []Impact
	imps = append(imps, v.checkAggregated()...)
	imps = append(imps, v.checkPLAs()...)
	imps = append(imps, v.checkThresholds()...)
	imps = append(imps, v.checkFilters()...)
	imps = append(imps, v.checkStatic()...)
	imps = append(imps, v.checkColumns()...)
	return imps
}

func (v *validator) checkAggregated() []Impact {
	if v.prog.Aggregated != v.prof.Aggregated {
		return []Impact{v.diverge("aggregated",
			fmt.Sprintf("program says aggregated=%v, query profile says %v", v.prog.Aggregated, v.prof.Aggregated))}
	}
	return nil
}

func (v *validator) checkPLAs() []Impact {
	want := make([]string, 0, len(v.comp.PLAs))
	for _, p := range v.comp.PLAs {
		want = append(want, p.ID)
	}
	if strings.Join(want, ",") != strings.Join(v.prog.PLAs, ",") {
		return []Impact{v.diverge("plas",
			fmt.Sprintf("program composes [%s], interpreter composes [%s]",
				strings.Join(v.prog.PLAs, " "), strings.Join(want, " ")))}
	}
	return nil
}

// checkThresholds recomputes the most-restrictive per-attribute merge of
// the composite's aggregation rules and compares it with the baked
// thresholds. A non-aggregated report must bake none (they fold to a
// static block, checked by checkStatic).
func (v *validator) checkThresholds() []Impact {
	var imps []Impact
	if !v.prof.Aggregated {
		if len(v.prog.Thresholds) != 0 {
			imps = append(imps, v.diverge("thresholds",
				fmt.Sprintf("non-aggregated report bakes %d thresholds; interpreter folds them to a static block", len(v.prog.Thresholds))))
		}
		return imps
	}
	want := map[string]int{}
	for _, rule := range v.comp.AggregationRules() {
		key := strings.ToLower(rule.By)
		if rule.MinCount > want[key] {
			want[key] = rule.MinCount
		}
	}
	got := map[string]int{}
	for _, th := range v.prog.Thresholds {
		got[th.By] = th.Min
	}
	for _, by := range sortedKeys(want) {
		if g, ok := got[by]; !ok {
			imps = append(imps, v.diverge(thresholdSubject(by),
				fmt.Sprintf("interpreter enforces min %d by %s; program bakes no threshold", want[by], thresholdSubject(by))))
		} else if g != want[by] {
			imps = append(imps, v.diverge(thresholdSubject(by),
				fmt.Sprintf("interpreter enforces min %d by %s; program bakes min %d", want[by], thresholdSubject(by), g)))
		}
	}
	for _, by := range sortedKeys(got) {
		if _, ok := want[by]; !ok {
			imps = append(imps, v.diverge(thresholdSubject(by),
				fmt.Sprintf("program bakes min %d by %s that no composed aggregation rule requires", got[by], thresholdSubject(by))))
		}
	}
	return imps
}

// checkFilters compares the pre-bound row filters with the composite's
// filter expressions, in composition order, including the safety of the
// pre-bound predicate.
func (v *validator) checkFilters() []Impact {
	want := v.comp.Filters()
	if len(want) != len(v.prog.Filters) {
		return []Impact{v.diverge("filters",
			fmt.Sprintf("interpreter applies %d row filters, program binds %d", len(want), len(v.prog.Filters)))}
	}
	var imps []Impact
	for i, f := range want {
		bound := compile.BindPredicate(f)
		gotF := v.prog.Filters[i]
		if fmt.Sprint(gotF.Expr) != fmt.Sprint(f) {
			imps = append(imps, v.diverge(fmt.Sprint(f),
				fmt.Sprintf("row filter %d: interpreter applies %s, program binds %s", i, f, gotF.Expr)))
		} else if gotF.Safe != bound.Safe {
			imps = append(imps, v.diverge(fmt.Sprint(f),
				fmt.Sprintf("row filter %s: bound safety %v differs from rebound %v", f, gotF.Safe, bound.Safe)))
		}
	}
	return imps
}

// checkStatic independently re-derives the static verdict set — join
// permission blocks, per-column mask decisions, aggregation fold-to-block
// — and compares it (as a set keyed outcome|rule|subject) with the
// program's folded verdicts.
func (v *validator) checkStatic() []Impact {
	want := map[string]bool{}

	// Join permissions: per-table source+warehouse composites.
	for _, jp := range v.prof.JoinPairs {
		a := v.perTableComposite(jp.A)
		b := v.perTableComposite(jp.B)
		if ok, _ := a.JoinAllowed(jp.B); !ok {
			want["block|join-permission|"+jp.A+" JOIN "+jp.B] = true
		} else if ok, _ := b.JoinAllowed(jp.A); !ok {
			want["block|join-permission|"+jp.B+" JOIN "+jp.A] = true
		}
	}

	// Attribute access on non-aggregated output columns.
	aggCols := v.aggregateColumns()
	for _, name := range sortedKeys(v.prof.OutputNames) {
		if aggCols[name] {
			continue
		}
		if d := v.decideColumn(name); d != nil {
			want["mask|"+d.Rule+"|"+name] = true
		}
	}

	// A non-aggregated report under threshold rules folds to blocks.
	if !v.prof.Aggregated {
		for _, rule := range v.comp.AggregationRules() {
			want["block|aggregation-threshold|"+thresholdSubject(rule.By)] = true
		}
	}

	got := map[string]bool{}
	for _, verdict := range v.prog.Static {
		got[verdict.Outcome+"|"+verdict.Rule+"|"+verdict.Subject] = true
	}
	var imps []Impact
	for _, key := range sortedKeys(want) {
		if !got[key] {
			imps = append(imps, v.diverge(key,
				fmt.Sprintf("interpreter derives static verdict %q that the program lacks", key)))
		}
	}
	for _, key := range sortedKeys(got) {
		if !want[key] {
			imps = append(imps, v.diverge(key,
				fmt.Sprintf("program folds static verdict %q the interpreter does not derive", key)))
		}
	}
	return imps
}

// checkColumns re-derives the per-column classification — aggregate,
// masked (and by which rule), release conditions — and compares it with
// the program's column plans.
func (v *validator) checkColumns() []Impact {
	aggCols := v.aggregateColumns()
	plans := columnMap(v.prog)
	var imps []Impact
	for _, name := range sortedKeys(v.prof.OutputNames) {
		cp, ok := plans[name]
		if !ok {
			imps = append(imps, v.diverge(name,
				fmt.Sprintf("output column %q has no compiled column plan", name)))
			continue
		}
		if aggCols[name] {
			if !cp.Aggregate {
				imps = append(imps, v.diverge(name,
					fmt.Sprintf("column %q aggregates in the query but the plan treats it as raw", name)))
			}
			continue
		}
		if cp.Aggregate {
			imps = append(imps, v.diverge(name,
				fmt.Sprintf("plan treats column %q as aggregate but the query does not aggregate it", name)))
			continue
		}
		d, conds := v.decideColumnConds(name)
		switch {
		case d != nil && !cp.Masked:
			imps = append(imps, v.diverge(name,
				fmt.Sprintf("interpreter masks column %q (%s) but the plan releases it", name, d.Rule)))
		case d == nil && cp.Masked:
			imps = append(imps, v.diverge(name,
				fmt.Sprintf("plan masks column %q (%s) but the interpreter releases it", name, cp.Rule)))
		case d != nil && cp.Masked && d.Rule != cp.Rule:
			imps = append(imps, v.diverge(name,
				fmt.Sprintf("column %q masked under rule %q by the interpreter, %q by the plan", name, d.Rule, cp.Rule)))
		case d == nil:
			wantConds := strings.Join(conds, " AND ")
			gotConds := strings.Join(cp.Conditions, " AND ")
			if wantConds != gotConds {
				imps = append(imps, v.diverge(name,
					fmt.Sprintf("column %q release conditions diverge: interpreter requires [%s], plan binds [%s]", name, wantConds, gotConds)))
			}
		}
	}
	for name := range plans {
		if _, ok := v.prof.OutputNames[name]; !ok {
			imps = append(imps, v.diverge(name,
				fmt.Sprintf("plan carries column %q the query does not output", name)))
		}
	}
	sortImpacts(imps)
	return imps
}

// --- independent re-derivations of the enforcer's folding helpers ---

type maskDecision struct{ Rule string }

func (v *validator) decideColumn(name string) *maskDecision {
	d, _ := v.decideColumnConds(name)
	return d
}

// decideColumnConds mirrors the runtime column decision: scoped
// attribute references (output name, base-table origins, warehouse
// relations carrying the column) resolved through the composite under
// most-restrictive-wins, closed world.
func (v *validator) decideColumnConds(name string) (*maskDecision, []string) {
	refs := []policy.AttrRef{{Name: strings.ToLower(name)}}
	candidates := map[string]bool{strings.ToLower(name): true}
	for _, o := range v.prof.OutputNames[name] {
		refs = append(refs, policy.AttrRef{Name: o.Column, Table: o.Table})
		candidates[o.Column] = true
	}
	for _, rel := range v.fromNames() {
		tab, ok := v.s.Catalog.Table(rel)
		if !ok {
			continue
		}
		for c := range candidates {
			if tab.Schema.HasColumn(c) {
				refs = append(refs, policy.AttrRef{Name: c, Table: rel})
			}
		}
	}
	d := v.comp.DecideAttributeRefs(refs, v.role, v.purpose)
	if d.Effect == policy.Deny {
		if len(d.Matched) > 0 {
			return &maskDecision{Rule: "access-deny"}, nil
		}
		return &maskDecision{Rule: "access-default-deny"}, nil
	}
	seen := map[string]bool{}
	var conds []string
	for _, c := range d.Conditions {
		if key := fmt.Sprint(c); !seen[key] {
			seen[key] = true
			conds = append(conds, key)
		}
	}
	return nil, conds
}

func (v *validator) perTableComposite(table string) *policy.Composite {
	var plas []*policy.PLA
	for _, lvl := range []policy.Level{policy.LevelSource, policy.LevelWarehouse} {
		plas = append(plas, v.s.Policies.ForScope(lvl, table).PLAs...)
	}
	return policy.Compose(plas...)
}

func (v *validator) fromNames() []string {
	out := []string{strings.ToLower(v.sel.From.Name)}
	for _, j := range v.sel.Joins {
		out = append(out, strings.ToLower(j.Table.Name))
	}
	return out
}

func (v *validator) aggregateColumns() map[string]bool {
	out := map[string]bool{}
	for _, it := range v.sel.Items {
		if it.Agg != nil {
			out[strings.ToLower(it.OutName())] = true
		}
	}
	return out
}
