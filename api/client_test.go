package api

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	apiv1 "plabi/api/v1"
)

// The client's integration behavior against the real server lives in
// internal/serve; these tests pin the transport contract itself — paths,
// auth header, envelope decoding — against a canned handler.

func TestClientRequestShapeAndDecoding(t *testing.T) {
	var gotPath, gotAuth, gotMethod string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotPath, gotAuth, gotMethod = r.URL.Path, r.Header.Get("Authorization"), r.Method
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"tenant":"alpha","report":"r","correlation_id":"c1","total_rows":3,"masked_cells":0,"suppressed_rows":0,"cache_hit":false}`))
	}))
	defer srv.Close()

	c := NewClient(srv.URL+"/", "tok-123") // trailing slash trimmed
	resp, err := c.Render(context.Background(), "alpha", apiv1.RenderRequest{Report: "r"})
	if err != nil {
		t.Fatalf("Render: %v", err)
	}
	if gotMethod != http.MethodPost || gotPath != "/v1/tenants/alpha/render" {
		t.Fatalf("request was %s %s, want POST /v1/tenants/alpha/render", gotMethod, gotPath)
	}
	if gotAuth != "Bearer tok-123" {
		t.Fatalf("Authorization = %q", gotAuth)
	}
	if resp.TotalRows != 3 || resp.CorrelationID != "c1" {
		t.Fatalf("decoded %+v", resp)
	}
}

func TestClientDecodesErrorEnvelope(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusForbidden)
		_, _ = w.Write([]byte(`{"error":{"code":"pla_blocked","message":"blocked","correlation_id":"c9","decisions":[{"outcome":"block","rule":"access-default-deny"}]}}`))
	}))
	defer srv.Close()

	_, err := NewClient(srv.URL, "tok").Render(context.Background(), "alpha", apiv1.RenderRequest{Report: "r"})
	var apiErr *apiv1.Error
	if !errors.As(err, &apiErr) {
		t.Fatalf("error %T is not *apiv1.Error", err)
	}
	if apiErr.Code != apiv1.CodeBlocked || apiErr.HTTP != http.StatusForbidden {
		t.Fatalf("got code=%s http=%d", apiErr.Code, apiErr.HTTP)
	}
	if len(apiErr.Decisions) != 1 || apiErr.Decisions[0].Rule != "access-default-deny" {
		t.Fatalf("decisions not carried: %+v", apiErr.Decisions)
	}
}

func TestClientWrapsNonEnvelopeFailure(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "bad gateway", http.StatusBadGateway)
	}))
	defer srv.Close()

	_, err := NewClient(srv.URL, "tok").Reports(context.Background(), "alpha")
	var apiErr *apiv1.Error
	if !errors.As(err, &apiErr) {
		t.Fatalf("error %T is not *apiv1.Error", err)
	}
	if apiErr.Code != apiv1.CodeInternal || apiErr.HTTP != http.StatusBadGateway {
		t.Fatalf("got code=%s http=%d", apiErr.Code, apiErr.HTTP)
	}
}
