package sql

import (
	"fmt"
	"strconv"
	"strings"

	"plabi/internal/relation"
)

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	pos  int
}

// Parse parses a single SQL statement (SELECT or CREATE VIEW).
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var stmt Statement
	if p.peekKeyword("CREATE") {
		stmt, err = p.parseCreateView()
	} else {
		stmt, err = p.parseSelect()
	}
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errf("trailing input after statement")
	}
	return stmt, nil
}

// ParseSelect parses a SELECT statement.
func ParseSelect(src string) (*SelectStmt, error) {
	stmt, err := Parse(src)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sql: expected SELECT, got %T", stmt)
	}
	return sel, nil
}

// ParseExpr parses a standalone scalar/boolean expression — the form used
// by PLA intensional conditions and association queries' predicates.
func ParseExpr(src string) (relation.Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errf("trailing input after expression")
	}
	return e, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) atEOF() bool { return p.cur().kind == tokEOF }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: %s (near position %d, token %q)",
		fmt.Sprintf(format, args...), p.cur().pos, p.cur().text)
}

func (p *parser) peekKeyword(kw string) bool {
	t := p.cur()
	return t.kind == tokKeyword && t.text == kw
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.peekKeyword(kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf("expected %s", kw)
	}
	return nil
}

func (p *parser) peekOp(op string) bool {
	t := p.cur()
	return t.kind == tokOp && t.text == op
}

func (p *parser) acceptOp(op string) bool {
	if p.peekOp(op) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return p.errf("expected %q", op)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.cur()
	if t.kind == tokIdent {
		p.pos++
		return t.text, nil
	}
	// DATE doubles as an ordinary identifier (the paper's own schema has
	// a "date" column).
	if t.kind == tokKeyword && t.text == "DATE" {
		p.pos++
		return "date", nil
	}
	return "", p.errf("expected identifier")
}

func (p *parser) parseCreateView() (*CreateViewStmt, error) {
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("VIEW"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	return &CreateViewStmt{Name: name, Select: sel}, nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	s := &SelectStmt{Limit: -1}
	s.Distinct = p.acceptKeyword("DISTINCT")

	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		s.Items = append(s.Items, item)
		if !p.acceptOp(",") {
			break
		}
	}

	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	from, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	s.From = from

	for {
		var kind relation.JoinKind
		switch {
		case p.acceptKeyword("LEFT"):
			kind = relation.LeftJoin
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
		case p.acceptKeyword("INNER"):
			kind = relation.InnerJoin
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
		case p.acceptKeyword("JOIN"):
			kind = relation.InnerJoin
		default:
			goto afterJoins
		}
		tr, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		on, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		s.Joins = append(s.Joins, JoinClause{Kind: kind, Table: tr, On: on})
	}
afterJoins:

	if p.acceptKeyword("WHERE") {
		w, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		s.Where = w
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			g, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, g)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		h, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		s.Having = h
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Col: col}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			s.OrderBy = append(s.OrderBy, item)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		t := p.cur()
		if t.kind != tokNumber {
			return nil, p.errf("expected number after LIMIT")
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, p.errf("bad LIMIT %q", t.text)
		}
		p.pos++
		s.Limit = n
	}
	return s, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	name, err := p.expectIdent()
	if err != nil {
		return TableRef{}, err
	}
	tr := TableRef{Name: name}
	if p.acceptKeyword("AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return TableRef{}, err
		}
		tr.Alias = alias
	} else if p.cur().kind == tokIdent {
		tr.Alias = p.cur().text
		p.pos++
	}
	return tr, nil
}

var aggKeywords = map[string]relation.AggKind{
	"COUNT": relation.AggCount,
	"SUM":   relation.AggSum,
	"AVG":   relation.AggAvg,
	"MIN":   relation.AggMin,
	"MAX":   relation.AggMax,
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.acceptOp("*") {
		return SelectItem{Star: true}, nil
	}
	var item SelectItem
	// Aggregate call?
	if t := p.cur(); t.kind == tokKeyword {
		if kind, ok := aggKeywords[t.text]; ok && p.toks[p.pos+1].kind == tokOp && p.toks[p.pos+1].text == "(" {
			p.pos += 2 // keyword and '('
			agg := &AggCall{Kind: kind}
			if p.acceptOp("*") {
				if kind != relation.AggCount {
					return item, p.errf("%s(*) is not valid", t.text)
				}
			} else {
				agg.Distinct = p.acceptKeyword("DISTINCT")
				arg, err := p.parseOr()
				if err != nil {
					return item, err
				}
				agg.Arg = arg
				if kind == relation.AggCount && agg.Distinct {
					agg.Kind = relation.AggCountDistinct
				}
			}
			if err := p.expectOp(")"); err != nil {
				return item, err
			}
			item.Agg = agg
			item.Alias = p.parseOptionalAlias()
			return item, nil
		}
	}
	e, err := p.parseOr()
	if err != nil {
		return item, err
	}
	item.Expr = e
	item.Alias = p.parseOptionalAlias()
	return item, nil
}

func (p *parser) parseOptionalAlias() string {
	if p.acceptKeyword("AS") {
		if a, err := p.expectIdent(); err == nil {
			return a
		}
		return ""
	}
	if p.cur().kind == tokIdent {
		// Bare alias only when the next token suggests end of item.
		next := p.toks[p.pos+1]
		if next.kind == tokEOF || (next.kind == tokOp && (next.text == "," || next.text == ")")) ||
			next.kind == tokKeyword && (next.text == "FROM") {
			a := p.cur().text
			p.pos++
			return a
		}
	}
	return ""
}

// --- expression grammar ---

func (p *parser) parseOr() (relation.Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = relation.Or(l, r)
	}
	return l, nil
}

func (p *parser) parseAnd() (relation.Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = relation.And(l, r)
	}
	return l, nil
}

func (p *parser) parseNot() (relation.Expr, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return relation.Not(e), nil
	}
	return p.parseComparison()
}

var cmpOps = map[string]relation.BinOp{
	"=": relation.OpEq, "<>": relation.OpNe, "<": relation.OpLt,
	"<=": relation.OpLe, ">": relation.OpGt, ">=": relation.OpGe,
}

func (p *parser) parseComparison() (relation.Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if p.acceptKeyword("IS") {
		neg := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		if neg {
			return relation.IsNotNull(l), nil
		}
		return relation.IsNull(l), nil
	}
	// [NOT] IN / [NOT] BETWEEN / [NOT] LIKE
	negate := false
	if p.peekKeyword("NOT") {
		next := p.toks[p.pos+1]
		if next.kind == tokKeyword && (next.text == "IN" || next.text == "BETWEEN" || next.text == "LIKE") {
			p.pos++
			negate = true
		}
	}
	if p.acceptKeyword("IN") {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var list []relation.Expr
		for {
			e, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &relation.InExpr{E: l, List: list, Negate: negate}, nil
	}
	if p.acceptKeyword("BETWEEN") {
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		between := relation.And(
			relation.Bin(relation.OpGe, l, lo),
			relation.Bin(relation.OpLe, l, hi))
		if negate {
			return relation.Not(between), nil
		}
		return between, nil
	}
	if p.acceptKeyword("LIKE") {
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		like := relation.Bin(relation.OpLike, l, r)
		if negate {
			return relation.Not(like), nil
		}
		return like, nil
	}
	if t := p.cur(); t.kind == tokOp {
		if op, ok := cmpOps[t.text]; ok {
			p.pos++
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return relation.Bin(op, l, r), nil
		}
	}
	return l, nil
}

func (p *parser) parseAdditive() (relation.Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op relation.BinOp
		switch {
		case p.acceptOp("+"):
			op = relation.OpAdd
		case p.acceptOp("-"):
			op = relation.OpSub
		case p.acceptOp("||"):
			op = relation.OpConcat
		default:
			return l, nil
		}
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = relation.Bin(op, l, r)
	}
}

func (p *parser) parseMultiplicative() (relation.Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op relation.BinOp
		switch {
		case p.acceptOp("*"):
			op = relation.OpMul
		case p.acceptOp("/"):
			op = relation.OpDiv
		case p.acceptOp("%"):
			op = relation.OpMod
		default:
			return l, nil
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = relation.Bin(op, l, r)
	}
}

func (p *parser) parseUnary() (relation.Expr, error) {
	if p.acceptOp("-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return relation.Neg(e), nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (relation.Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.pos++
		if strings.ContainsRune(t.text, '.') {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.text)
			}
			return relation.Lit(relation.Float(f)), nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return relation.Lit(relation.Int(i)), nil
	case tokString:
		p.pos++
		return relation.Lit(relation.Str(t.text)), nil
	case tokKeyword:
		switch t.text {
		case "NULL":
			p.pos++
			return relation.Lit(relation.Null()), nil
		case "TRUE":
			p.pos++
			return relation.Lit(relation.Bool(true)), nil
		case "FALSE":
			p.pos++
			return relation.Lit(relation.Bool(false)), nil
		case "DATE":
			p.pos++
			lt := p.cur()
			if lt.kind == tokString {
				p.pos++
				v, err := relation.ParseDate(lt.text)
				if err != nil {
					return nil, p.errf("bad DATE literal %q", lt.text)
				}
				return relation.Lit(v), nil
			}
			// DATE(expr) scalar function.
			if p.acceptOp("(") {
				arg, err := p.parseOr()
				if err != nil {
					return nil, err
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return relation.Fn("DATE", arg), nil
			}
			// Otherwise DATE is a plain column named "date" (the paper's
			// own Prescriptions schema uses it).
			return relation.ColRefExpr("date"), nil
		case "COUNT", "SUM", "AVG", "MIN", "MAX":
			return nil, p.errf("aggregate %s not allowed in this context", t.text)
		}
		return nil, p.errf("unexpected keyword %s", t.text)
	case tokIdent:
		p.pos++
		// Function call?
		if p.peekOp("(") {
			p.pos++
			var args []relation.Expr
			if !p.peekOp(")") {
				for {
					a, err := p.parseOr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if !p.acceptOp(",") {
						break
					}
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return relation.Fn(t.text, args...), nil
		}
		return relation.ColRefExpr(t.text), nil
	case tokOp:
		if t.text == "(" {
			p.pos++
			e, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errf("unexpected token")
}
