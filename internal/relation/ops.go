package relation

import (
	"fmt"
	"sort"
	"strings"
)

// Select returns the rows of t satisfying pred, preserving lineage and
// column origins.
func Select(t *Table, pred Expr) (*Table, error) {
	if t.seg != nil {
		return selectSeg(t, pred)
	}
	if CurrentExecMode() == ExecRowAtATime {
		return selectRows(t, pred)
	}
	return selectVec(t, pred)
}

// selectRows is the row-at-a-time reference implementation of Select.
func selectRows(t *Table, pred Expr) (*Table, error) {
	out := t.derived(t.Name + "_sel")
	for i, r := range t.Rows {
		ok, err := EvalPredicate(pred, r, t.Schema)
		if err != nil {
			return nil, err
		}
		if ok {
			out.Rows = append(out.Rows, r)
			out.Lineage = append(out.Lineage, t.RowLineage(i))
		}
	}
	return out, nil
}

// ProjCol describes one output column of a projection: an expression and an
// output name ("" derives the name from the expression).
type ProjCol struct {
	Expr Expr
	As   string
}

// P is a convenience constructor for a simple column projection.
func P(col string) ProjCol { return ProjCol{Expr: ColRefExpr(col)} }

// PAs is a convenience constructor for an aliased projection.
func PAs(e Expr, as string) ProjCol { return ProjCol{Expr: e, As: as} }

// outName computes the column name of a projection item.
func (p ProjCol) outName() string {
	if p.As != "" {
		return p.As
	}
	if c, ok := p.Expr.(*ColExpr); ok {
		return baseName(c.Name)
	}
	return p.Expr.String()
}

// Project evaluates the given projections for each row. Column origins of
// each output column are the union of origins of every input column the
// expression references; row lineage is preserved.
func Project(t *Table, cols ...ProjCol) (*Table, error) {
	if t.seg != nil {
		mt, err := t.Materialize()
		if err != nil {
			return nil, err
		}
		t = mt
	}
	if CurrentExecMode() == ExecRowAtATime {
		return projectRows(t, cols...)
	}
	return projectVec(t, cols...)
}

// projectRows is the row-at-a-time reference implementation of Project.
func projectRows(t *Table, cols ...ProjCol) (*Table, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("relation: empty projection")
	}
	out := &Table{Name: t.Name + "_proj"}
	schemaCols := make([]Column, len(cols))
	out.ColOrigin = make([]ColRefSet, len(cols))
	for i, p := range cols {
		schemaCols[i] = Column{Name: p.outName(), Type: InferType(p.Expr, t.Schema)}
		var origin ColRefSet
		for _, ref := range ColumnsOf(p.Expr) {
			ci := t.Schema.Index(ref)
			if ci < 0 {
				return nil, fmt.Errorf("relation: projection references unknown column %q", ref)
			}
			origin = append(origin, t.ColumnOrigin(ci)...)
		}
		out.ColOrigin[i] = origin.normalize()
	}
	out.Schema = &Schema{Columns: schemaCols}
	for i, r := range t.Rows {
		nr := make(Row, len(cols))
		for j, p := range cols {
			v, err := p.Expr.Eval(r, t.Schema)
			if err != nil {
				return nil, err
			}
			nr[j] = v
			if out.Schema.Columns[j].Type == TNull && !v.IsNull() {
				out.Schema.Columns[j].Type = v.Kind
			}
		}
		out.Rows = append(out.Rows, nr)
		out.Lineage = append(out.Lineage, t.RowLineage(i))
	}
	return out, nil
}

// ProjectCols projects named columns in order.
func ProjectCols(t *Table, names ...string) (*Table, error) {
	cols := make([]ProjCol, len(names))
	for i, n := range names {
		cols[i] = P(n)
	}
	return Project(t, cols...)
}

// Extend appends one computed column to every row.
func Extend(t *Table, name string, e Expr) (*Table, error) {
	if t.seg != nil {
		mt, err := t.Materialize()
		if err != nil {
			return nil, err
		}
		t = mt
	}
	if CurrentExecMode() == ExecRowAtATime {
		return extendRows(t, name, e)
	}
	return extendVec(t, name, e)
}

// extendRows is the row-at-a-time reference implementation of Extend.
func extendRows(t *Table, name string, e Expr) (*Table, error) {
	out := t.derived(t.Name + "_ext")
	out.Schema.Columns = append(out.Schema.Columns, Column{Name: name, Type: InferType(e, t.Schema)})
	var origin ColRefSet
	for _, ref := range ColumnsOf(e) {
		ci := t.Schema.Index(ref)
		if ci < 0 {
			return nil, fmt.Errorf("relation: extend references unknown column %q", ref)
		}
		origin = append(origin, t.ColumnOrigin(ci)...)
	}
	out.ColOrigin = append(out.ColOrigin, origin.normalize())
	for i, r := range t.Rows {
		v, err := e.Eval(r, t.Schema)
		if err != nil {
			return nil, err
		}
		nr := make(Row, len(r)+1)
		copy(nr, r)
		nr[len(r)] = v
		out.Rows = append(out.Rows, nr)
		out.Lineage = append(out.Lineage, t.RowLineage(i))
	}
	return out, nil
}

// Rename returns t with the table renamed and columns qualified by the new
// name; lineage and origins are preserved.
func Rename(t *Table, name string) *Table {
	if t.seg != nil {
		return renameSeg(t, name)
	}
	out := t.derived(name)
	out.Schema = t.Schema.Qualify(name)
	out.Rows = t.Rows
	if t.Base || t.Lineage == nil {
		out.Lineage = make([]LineageSet, len(t.Rows))
		for i := range t.Rows {
			out.Lineage[i] = t.RowLineage(i)
		}
	} else {
		out.Lineage = t.Lineage
	}
	return out
}

// JoinKind selects the join variant.
type JoinKind int

// Join kinds.
const (
	InnerJoin JoinKind = iota
	LeftJoin
)

// Join performs a (hash-partitioned when possible) join of l and r on pred.
// Output columns are l's columns followed by r's; lineage of each output
// row is the union of the matched input rows' lineage.
func Join(l, r *Table, pred Expr, kind JoinKind) (*Table, error) {
	if l.seg != nil || r.seg != nil {
		return joinSeg(l, r, pred, kind)
	}
	if CurrentExecMode() == ExecRowAtATime {
		return joinRows(l, r, pred, kind)
	}
	return joinVec(l, r, pred, kind)
}

// NestedLoopJoin joins l and r by evaluating pred on every row pair, with
// no hash fast path. It is the semantic reference the hash joins must
// match and the baseline the benchmark suite measures them against.
func NestedLoopJoin(l, r *Table, pred Expr, kind JoinKind) (*Table, error) {
	lm, err := l.Materialize()
	if err != nil {
		return nil, err
	}
	rm, err := r.Materialize()
	if err != nil {
		return nil, err
	}
	return nestedLoopInto(newJoinShell(lm, rm), lm, rm, pred, kind)
}

// joinRows is the row-at-a-time reference implementation of Join.
func joinRows(l, r *Table, pred Expr, kind JoinKind) (*Table, error) {
	out := &Table{Name: l.Name + "_join_" + r.Name}
	cols := make([]Column, 0, l.Schema.Len()+r.Schema.Len())
	cols = append(cols, l.Schema.Columns...)
	cols = append(cols, r.Schema.Columns...)
	out.Schema = &Schema{Columns: cols}
	out.ColOrigin = make([]ColRefSet, 0, len(cols))
	for c := range l.Schema.Columns {
		out.ColOrigin = append(out.ColOrigin, l.ColumnOrigin(c))
	}
	for c := range r.Schema.Columns {
		out.ColOrigin = append(out.ColOrigin, r.ColumnOrigin(c))
	}

	joined := out.Schema
	// Fast path: equi-join on a simple column pair.
	if lc, rc, ok := equiJoinCols(pred, l.Schema, r.Schema); ok {
		idx := make(map[string][]int, len(r.Rows))
		for j, rr := range r.Rows {
			if rr[rc].IsNull() {
				continue
			}
			k := rr[rc].Key()
			idx[k] = append(idx[k], j)
		}
		for i, lr := range l.Rows {
			matched := false
			if !lr[lc].IsNull() {
				for _, j := range idx[lr[lc].Key()] {
					nr := make(Row, 0, len(cols))
					nr = append(nr, lr...)
					nr = append(nr, r.Rows[j]...)
					out.Rows = append(out.Rows, nr)
					out.Lineage = append(out.Lineage, mergeLineage(l.RowLineage(i), r.RowLineage(j)))
					matched = true
				}
			}
			if !matched && kind == LeftJoin {
				nr := make(Row, len(cols))
				copy(nr, lr)
				out.Rows = append(out.Rows, nr)
				out.Lineage = append(out.Lineage, l.RowLineage(i))
			}
		}
		return out, nil
	}

	// General nested-loop join.
	for i, lr := range l.Rows {
		matched := false
		for j, rr := range r.Rows {
			nr := make(Row, 0, len(cols))
			nr = append(nr, lr...)
			nr = append(nr, rr...)
			ok, err := EvalPredicate(pred, nr, joined)
			if err != nil {
				return nil, err
			}
			if ok {
				out.Rows = append(out.Rows, nr)
				out.Lineage = append(out.Lineage, mergeLineage(l.RowLineage(i), r.RowLineage(j)))
				matched = true
			}
		}
		if !matched && kind == LeftJoin {
			nr := make(Row, len(cols))
			copy(nr, lr)
			out.Rows = append(out.Rows, nr)
			out.Lineage = append(out.Lineage, l.RowLineage(i))
		}
	}
	return out, nil
}

// equiJoinCols recognizes predicates of the form lcol = rcol where lcol is
// in l's schema and rcol in r's (either order).
func equiJoinCols(pred Expr, l, r *Schema) (lc, rc int, ok bool) {
	be, isBin := pred.(*BinExpr)
	if !isBin || be.Op != OpEq {
		return 0, 0, false
	}
	a, aok := be.L.(*ColExpr)
	b, bok := be.R.(*ColExpr)
	if !aok || !bok {
		return 0, 0, false
	}
	if li, ri := l.Index(a.Name), r.Index(b.Name); li >= 0 && ri >= 0 && l.Index(b.Name) < 0 {
		return li, ri, true
	}
	if li, ri := l.Index(b.Name), r.Index(a.Name); li >= 0 && ri >= 0 && l.Index(a.Name) < 0 {
		return li, ri, true
	}
	return 0, 0, false
}

// AggKind enumerates aggregate functions.
type AggKind int

// Aggregate kinds.
const (
	AggCount AggKind = iota // COUNT(*) when Col == ""
	AggSum
	AggAvg
	AggMin
	AggMax
	AggCountDistinct
)

var aggNames = map[AggKind]string{
	AggCount: "COUNT", AggSum: "SUM", AggAvg: "AVG",
	AggMin: "MIN", AggMax: "MAX", AggCountDistinct: "COUNT_DISTINCT",
}

// String returns the SQL spelling of the aggregate.
func (k AggKind) String() string { return aggNames[k] }

// AggSpec describes one aggregate output column.
type AggSpec struct {
	Kind AggKind
	Col  string // input column; "" only for COUNT(*)
	As   string // output name; "" derives one
}

func (a AggSpec) outName() string {
	if a.As != "" {
		return a.As
	}
	if a.Col == "" {
		return "count"
	}
	return strings.ToLower(a.Kind.String()) + "_" + baseName(a.Col)
}

func (a AggSpec) outType(s *Schema) Type {
	switch a.Kind {
	case AggCount, AggCountDistinct:
		return TInt
	case AggAvg:
		return TFloat
	default:
		if i := s.Index(a.Col); i >= 0 {
			return s.Columns[i].Type
		}
		return TFloat
	}
}

type aggState struct {
	n        int64
	sum      float64
	sumInt   int64
	allInt   bool
	min, max Value
	distinct map[string]bool // row path: Value.Key()-keyed
	vdist    map[ValKey]bool // vectorized path: interned, same classes
}

// vkDistinct records v for COUNT(DISTINCT) through the interned key space
// (ValKey classes coincide with Value.Key() classes, so the count matches
// the row path exactly).
func (st *aggState) vkDistinct(v Value) { st.vdist[MapKey(v)] = true }

// distinctCount returns the number of distinct values seen, whichever key
// space was used.
func (st *aggState) distinctCount() int {
	if st.vdist != nil {
		return len(st.vdist)
	}
	return len(st.distinct)
}

// result finalizes one aggregate value from the accumulated state.
func (st *aggState) result(kind AggKind) Value {
	switch kind {
	case AggCount:
		return Int(st.n)
	case AggSum:
		if st.n == 0 {
			return Null()
		}
		if st.allInt {
			return Int(st.sumInt)
		}
		return Float(st.sum)
	case AggAvg:
		if st.n == 0 {
			return Null()
		}
		return Float(st.sum / float64(st.n))
	case AggMin:
		return st.min
	case AggMax:
		return st.max
	case AggCountDistinct:
		return Int(int64(st.distinctCount()))
	default:
		return Null()
	}
}

// GroupBy groups t by the key columns and computes the aggregates. The
// output schema is keys followed by aggregates. Row lineage of each group
// is the union of its members' lineage — the basis for the paper's
// aggregation-threshold enforcement (a group's base-row support is exactly
// the size of its patient-level lineage).
func GroupBy(t *Table, keys []string, aggs []AggSpec) (*Table, error) {
	if t.seg != nil {
		return groupBySeg(t, keys, aggs)
	}
	if CurrentExecMode() == ExecRowAtATime {
		return groupByRows(t, keys, aggs)
	}
	return groupByVec(t, keys, aggs)
}

// groupByRows is the row-at-a-time reference implementation of GroupBy.
func groupByRows(t *Table, keys []string, aggs []AggSpec) (*Table, error) {
	return groupByStream(t, keys, aggs, func(visit func(Row, LineageSet)) error {
		for ri, r := range t.Rows {
			visit(r, t.RowLineage(ri))
		}
		return nil
	})
}

// groupByStream is the row-at-a-time GroupBy core over an arbitrary row
// stream: the in-memory reference iterates t.Rows, the segment-backed
// path streams decoded partitions through it one at a time. t supplies
// schema, name and provenance only — rows always come from iterate.
func groupByStream(t *Table, keys []string, aggs []AggSpec, iterate func(visit func(Row, LineageSet)) error) (*Table, error) {
	st, err := NewGroupByState(t, keys, aggs)
	if err != nil {
		return nil, err
	}
	if err := iterate(st.Add); err != nil {
		return nil, err
	}
	return st.Result(), nil
}

// Distinct removes duplicate rows; the surviving row's lineage is the union
// of all duplicates' lineage (the duplicates all "support" the output row).
func Distinct(t *Table) *Table {
	if t.seg != nil {
		t = t.mustMaterialize()
	}
	if CurrentExecMode() == ExecRowAtATime {
		return distinctRows(t)
	}
	return distinctVec(t)
}

// distinctRows is the row-at-a-time reference implementation of Distinct.
func distinctRows(t *Table) *Table {
	out := t.derived(t.Name + "_dist")
	index := map[string]int{}
	for i, r := range t.Rows {
		var kb strings.Builder
		for _, v := range r {
			kb.WriteString(v.Key())
			kb.WriteByte('|')
		}
		k := kb.String()
		if j, ok := index[k]; ok {
			out.Lineage[j] = append(out.Lineage[j], t.RowLineage(i)...)
			continue
		}
		index[k] = len(out.Rows)
		out.Rows = append(out.Rows, r)
		out.Lineage = append(out.Lineage, append(LineageSet(nil), t.RowLineage(i)...))
	}
	for j := range out.Lineage {
		out.Lineage[j] = out.Lineage[j].normalize()
	}
	return out
}

// Union appends the rows of b to a (schemas must be compatible), keeping
// duplicates (UNION ALL semantics); wrap with Distinct for set union.
func Union(a, b *Table) (*Table, error) {
	if a.seg != nil || b.seg != nil {
		am, err := a.Materialize()
		if err != nil {
			return nil, err
		}
		bm, err := b.Materialize()
		if err != nil {
			return nil, err
		}
		a, b = am, bm
	}
	if a.Schema.Len() != b.Schema.Len() {
		return nil, fmt.Errorf("relation: union arity mismatch: %s vs %s", a.Schema, b.Schema)
	}
	out := a.derived(a.Name + "_union")
	for c := range out.ColOrigin {
		out.ColOrigin[c] = out.ColOrigin[c].Union(b.ColumnOrigin(c))
	}
	for i, r := range a.Rows {
		out.Rows = append(out.Rows, r)
		out.Lineage = append(out.Lineage, a.RowLineage(i))
	}
	for i, r := range b.Rows {
		out.Rows = append(out.Rows, r)
		out.Lineage = append(out.Lineage, b.RowLineage(i))
	}
	return out, nil
}

// SortKey describes one ORDER BY term.
type SortKey struct {
	Col  string
	Desc bool
}

// Sort orders the table by the given keys (stable).
func Sort(t *Table, keys ...SortKey) (*Table, error) {
	if t.seg != nil {
		mt, err := t.Materialize()
		if err != nil {
			return nil, err
		}
		t = mt
	}
	idx := make([]int, len(keys))
	for i, k := range keys {
		ci := t.Schema.Index(k.Col)
		if ci < 0 {
			return nil, fmt.Errorf("relation: sort key %q not in %s", k.Col, t.Schema)
		}
		idx[i] = ci
	}
	out := t.derived(t.Name + "_sort")
	perm := make([]int, len(t.Rows))
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool {
		ra, rb := t.Rows[perm[a]], t.Rows[perm[b]]
		for i, ci := range idx {
			va, vb := ra[ci], rb[ci]
			// NULLs sort first.
			if va.IsNull() && vb.IsNull() {
				continue
			}
			if va.IsNull() {
				return !keys[i].Desc
			}
			if vb.IsNull() {
				return keys[i].Desc
			}
			c, ok := va.Compare(vb)
			if !ok || c == 0 {
				continue
			}
			if keys[i].Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	for _, p := range perm {
		out.Rows = append(out.Rows, t.Rows[p])
		out.Lineage = append(out.Lineage, t.RowLineage(p))
	}
	return out, nil
}

// Limit returns the first n rows.
func Limit(t *Table, n int) *Table {
	if t.seg != nil {
		t = t.mustMaterialize()
	}
	out := t.derived(t.Name + "_lim")
	if n > len(t.Rows) {
		n = len(t.Rows)
	}
	for i := 0; i < n; i++ {
		out.Rows = append(out.Rows, t.Rows[i])
		out.Lineage = append(out.Lineage, t.RowLineage(i))
	}
	return out
}
