// Command placheck parses and validates PLA DSL files, reports conflicts
// between agreements, and optionally checks a report query against them.
//
// Usage:
//
//	placheck file.pla [file2.pla ...]
//	placheck -query "SELECT ..." -role analyst -tables prescriptions file.pla
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"plabi/internal/enforce"
	"plabi/internal/policy"
	"plabi/internal/provenance"
	"plabi/internal/relation"
	"plabi/internal/report"
	"plabi/internal/sql"
)

func main() {
	query := flag.String("query", "", "report query to check against the PLAs")
	role := flag.String("role", "analyst", "consumer role for the check")
	purpose := flag.String("purpose", "", "consumer purpose for the check")
	tables := flag.String("tables", "", "comma-separated table:col1:col2 schemas the query runs over")
	asJSON := flag.Bool("json", false, "emit the parsed PLAs as JSON (for external auditing tools)")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "placheck: no PLA files given")
		os.Exit(2)
	}
	reg := policy.NewRegistry()
	var all []*policy.PLA
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "placheck:", err)
			os.Exit(1)
		}
		plas, err := policy.ParseFile(string(data))
		if err != nil {
			fmt.Fprintf(os.Stderr, "placheck: %s: %v\n", path, err)
			os.Exit(1)
		}
		for _, p := range plas {
			if err := reg.Add(p); err != nil {
				fmt.Fprintf(os.Stderr, "placheck: %s: %v\n", path, err)
				os.Exit(1)
			}
			all = append(all, p)
			if !*asJSON {
				fmt.Printf("ok: %s (owner=%s level=%s scope=%s atoms=%d)\n",
					p.ID, p.Owner, p.Level, p.Scope, p.Atoms())
			}
		}
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(all); err != nil {
			fmt.Fprintln(os.Stderr, "placheck:", err)
			os.Exit(1)
		}
		return
	}

	comp := policy.Compose(all...)
	if len(comp.Conflicts) > 0 {
		fmt.Println("\nconflicts:")
		for _, c := range comp.Conflicts {
			fmt.Println("  " + c.String())
		}
	} else {
		fmt.Println("\nno conflicts between the agreements")
	}

	if *query == "" {
		return
	}
	cat := sql.NewCatalog()
	for _, spec := range strings.Split(*tables, ",") {
		if spec == "" {
			continue
		}
		parts := strings.Split(spec, ":")
		cols := make([]relation.Column, 0, len(parts)-1)
		for _, c := range parts[1:] {
			cols = append(cols, relation.Col(c, relation.TString))
		}
		cat.Register(relation.NewBase(parts[0], &relation.Schema{Columns: cols}))
	}
	enf := enforce.NewReportEnforcer(reg, cat, provenance.NewTracer())
	def := &report.Definition{ID: "cli-check", Query: *query}
	decisions, err := enf.StaticCheck(def, *role, *purpose)
	if err != nil {
		fmt.Fprintln(os.Stderr, "placheck:", err)
		os.Exit(1)
	}
	if len(decisions) == 0 {
		fmt.Println("query is statically compliant for role " + *role)
		return
	}
	fmt.Println("\nstatic findings:")
	blocked := false
	for _, d := range decisions {
		fmt.Println("  " + d.String())
		if d.Outcome == enforce.Block {
			blocked = true
		}
	}
	if blocked {
		os.Exit(3)
	}
}
