package lint

import (
	"fmt"

	"plabi/internal/enforce"
	"plabi/internal/policy"
	"plabi/internal/report"
)

// blockedReports (PL004) statically proves, via the same decision logic
// the runtime uses, that a report can never render: every role/purpose
// combination in the report's audience yields at least one Block
// decision. A report nobody can ever see is a misconfiguration, not
// protection — the paper's pre-deployment check (§5) should catch it
// before the first consumer does.
type blockedReports struct{}

func init() { Register(blockedReports{}) }

func (blockedReports) Code() string { return "PL004" }
func (blockedReports) Name() string { return "always-blocked" }
func (blockedReports) Doc() string {
	return "Reports for which no role/purpose combination can ever pass the static " +
		"decision checks (join permissions, aggregation thresholds): dead deliverables."
}

func (blockedReports) Run(p *Pass) []Finding {
	if p.Catalog == nil || len(p.Reports) == 0 {
		return nil
	}
	var out []Finding
	for _, def := range p.Reports {
		if f, ok := alwaysBlocked(p, def); ok {
			out = append(out, f)
		}
	}
	return out
}

func alwaysBlocked(p *Pass, def *report.Definition) (Finding, bool) {
	roles := p.rolesFor(def)
	if len(roles) == 0 {
		return Finding{}, false // no role universe to quantify over
	}
	purposes := p.purposesFor(def)
	enf := p.enforcer()
	var sample enforce.Decision
	sampleRole, samplePurpose := "", ""
	for _, role := range roles {
		for _, purpose := range purposes {
			decs, err := enf.StaticCheck(def, role, purpose)
			if err != nil {
				return Finding{}, false // unprofilable query; not provable
			}
			blocked := enforce.Blocked(decs)
			if len(blocked) == 0 {
				return Finding{}, false // someone can render it
			}
			if sample.Rule == "" {
				sample, sampleRole, samplePurpose = blocked[0], role, purpose
			}
		}
	}
	purposeStr := samplePurpose
	if purposeStr == "" {
		purposeStr = "any"
	}
	return Finding{
		Code: "PL004", Severity: SevWarning, Level: policy.LevelReport,
		Pos:     p.plaPos(sample.PLAs),
		Subject: def.ID,
		Message: fmt.Sprintf("report %q can never render: every role/purpose combination is statically blocked (e.g. role %q, purpose %s: %s — %s)",
			def.ID, sampleRole, purposeStr, sample.Rule, sample.Detail),
		PLAs: sample.PLAs,
	}, true
}
