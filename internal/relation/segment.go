package relation

// segment.go implements the on-disk columnar segment format behind the
// out-of-core tables (see segstore.go / segtable.go and docs/STORAGE.md).
//
// A segment holds one partition of one table, column-major:
//
//	"PLSEG001"                     8-byte magic
//	uint32 LE header length
//	header JSON                    segHeader: table, partition, row range,
//	                               per-column type/encoding/zone map
//	uint32 LE CRC32-IEEE(header)
//	per column, in schema order:
//	  uint32 LE block length
//	  block bytes                  encoding per segColMeta.Enc
//	  uint32 LE CRC32-IEEE(block)
//
// Every length and checksum is validated on decode; any mismatch fails
// closed with a *CorruptError (never garbage rows). Encoding is fully
// deterministic — struct-ordered JSON, first-seen dictionary order — so
// re-encoding decoded rows reproduces the input byte for byte (the golden
// test pins this).

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"time"
)

// segMagic opens every segment file. The trailing digits version the
// physical layout; incompatible changes bump them.
const segMagic = "PLSEG001"

// segVersion is the header version written by this build.
const segVersion = 1

// Column block encodings. Typed encodings apply when every non-null value
// of the column shares one kind; mixed columns fall back to the generic
// per-value encoding.
const (
	encGeneric = iota // per value: kind byte + payload
	encInt            // null bitmap + 8-byte little-endian two's complement
	encFloat          // null bitmap + 8-byte IEEE-754 bits
	encString         // null bitmap + dictionary + 4-byte codes
	encBool           // null bitmap + 1 byte per value
	encDate           // null bitmap + 8-byte unix seconds (UTC midnight)
)

// Value kind tags used by the generic encoding.
const (
	svNull byte = iota
	svStr
	svInt
	svFloat
	svBool
	svDate
)

// ErrSegmentCorrupt is the sentinel behind every segment-decode failure,
// matched with errors.Is.
var ErrSegmentCorrupt = errors.New("relation: segment corrupt")

// CorruptError reports a segment that failed validation (bad magic,
// length out of range, checksum mismatch, malformed block). It unwraps to
// ErrSegmentCorrupt and is never retried: corruption is permanent.
type CorruptError struct {
	// Path is the segment file, when known.
	Path string
	// Detail says what failed.
	Detail string
}

// Error implements error.
func (e *CorruptError) Error() string {
	if e.Path == "" {
		return "relation: segment corrupt: " + e.Detail
	}
	return fmt.Sprintf("relation: segment %s corrupt: %s", e.Path, e.Detail)
}

// Unwrap lets errors.Is(err, ErrSegmentCorrupt) succeed.
func (e *CorruptError) Unwrap() error { return ErrSegmentCorrupt }

func corruptf(format string, args ...any) error {
	return &CorruptError{Detail: fmt.Sprintf(format, args...)}
}

// segVal is a JSON-serializable zone-map bound. K tags the kind
// ("s"/"i"/"f"/"b"/"d"); dates store unix seconds of their UTC midnight,
// which round-trips exactly because Date() truncates to day granularity.
type segVal struct {
	K string  `json:"k"`
	S string  `json:"s,omitempty"`
	I int64   `json:"i,omitempty"`
	F float64 `json:"f,omitempty"`
	B bool    `json:"b,omitempty"`
}

// segValOf serializes v as a zone bound; nil when the value has no
// serializable form (NULL, or non-finite floats JSON cannot carry).
func segValOf(v Value) *segVal {
	switch v.Kind {
	case TString:
		return &segVal{K: "s", S: v.S}
	case TInt:
		return &segVal{K: "i", I: v.I}
	case TFloat:
		if math.IsNaN(v.F) || math.IsInf(v.F, 0) {
			return nil
		}
		return &segVal{K: "f", F: v.F}
	case TBool:
		return &segVal{K: "b", B: v.B}
	case TDate:
		return &segVal{K: "d", I: v.T.Unix()}
	default:
		return nil
	}
}

// value reconstructs the bound.
func (sv *segVal) value() (Value, error) {
	switch sv.K {
	case "s":
		return Str(sv.S), nil
	case "i":
		return Int(sv.I), nil
	case "f":
		return Float(sv.F), nil
	case "b":
		return Bool(sv.B), nil
	case "d":
		return Date(time.Unix(sv.I, 0).UTC()), nil
	default:
		return Null(), corruptf("zone value kind %q", sv.K)
	}
}

// segColMeta is the per-column header entry: name/type for decoding
// without an external schema, the block encoding, and the zone map
// (Min/Max present together, over non-null values only).
type segColMeta struct {
	Name    string  `json:"name"`
	Type    int     `json:"type"`
	Enc     int     `json:"enc"`
	HasNull bool    `json:"has_null,omitempty"`
	AllNull bool    `json:"all_null,omitempty"`
	Min     *segVal `json:"min,omitempty"`
	Max     *segVal `json:"max,omitempty"`
}

// segHeader is the JSON header of one segment.
type segHeader struct {
	Version int          `json:"version"`
	Table   string       `json:"table"`
	Part    int          `json:"part"`
	Start   int          `json:"start"`
	Rows    int          `json:"rows"`
	Cols    []segColMeta `json:"cols"`
}

// colZone is the in-memory zone map of one column of one partition:
// min/max over the non-null values (valid only when hasZone), plus null
// presence. Pruning consults it before any block is decoded.
type colZone struct {
	hasZone  bool
	hasNull  bool
	allNull  bool
	min, max Value
}

// zone reconstructs the colZone of a decoded column header.
func (cm *segColMeta) zone() (colZone, error) {
	z := colZone{hasNull: cm.HasNull, allNull: cm.AllNull}
	if cm.Min != nil && cm.Max != nil {
		mn, err := cm.Min.value()
		if err != nil {
			return z, err
		}
		mx, err := cm.Max.value()
		if err != nil {
			return z, err
		}
		z.hasZone, z.min, z.max = true, mn, mx
	}
	return z, nil
}

// computeZones scans the rows once and builds each column's zone map.
// Columns whose values are mutually incomparable (mixed kinds) or contain
// non-finite floats get no min/max — pruning then treats every predicate
// over them as potentially true.
func computeZones(rows []Row, ncols int) []colZone {
	zones := make([]colZone, ncols)
	for ci := range zones {
		z := &zones[ci]
		z.allNull, z.hasZone = true, true
		for _, r := range rows {
			v := r[ci]
			if v.IsNull() {
				z.hasNull = true
				continue
			}
			if v.Kind == TFloat && (math.IsNaN(v.F) || math.IsInf(v.F, 0)) {
				z.hasZone = false
			}
			if z.allNull {
				z.allNull = false
				z.min, z.max = v, v
				continue
			}
			if !z.hasZone {
				continue
			}
			if c, ok := v.Compare(z.min); !ok {
				z.hasZone = false
				continue
			} else if c < 0 {
				z.min = v
			}
			if c, ok := v.Compare(z.max); !ok {
				z.hasZone = false
			} else if c > 0 {
				z.max = v
			}
		}
		if z.allNull {
			z.hasZone = false
		}
	}
	return zones
}

// chooseEnc picks the block encoding of column ci: typed when every
// non-null value shares one kind, generic otherwise.
func chooseEnc(rows []Row, ci int, z colZone) int {
	if z.allNull {
		return encGeneric
	}
	kind := TNull
	for _, r := range rows {
		v := r[ci]
		if v.IsNull() {
			continue
		}
		if kind == TNull {
			kind = v.Kind
			continue
		}
		if v.Kind != kind {
			return encGeneric
		}
	}
	switch kind {
	case TInt:
		return encInt
	case TFloat:
		return encFloat
	case TString:
		return encString
	case TBool:
		return encBool
	case TDate:
		return encDate
	default:
		return encGeneric
	}
}

func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func appendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

// encodeSegment serializes one partition of rows and returns the segment
// bytes plus the computed zone maps (kept in memory for pruning).
func encodeSegment(table string, part, start int, schema *Schema, rows []Row) ([]byte, []colZone, error) {
	ncols := schema.Len()
	if ncols == 0 {
		return nil, nil, fmt.Errorf("relation: segment: empty schema for %s", table)
	}
	for _, r := range rows {
		if len(r) != ncols {
			return nil, nil, fmt.Errorf("relation: segment: row arity %d does not match schema %s", len(r), schema)
		}
	}
	zones := computeZones(rows, ncols)
	h := segHeader{Version: segVersion, Table: table, Part: part, Start: start, Rows: len(rows)}
	encs := make([]int, ncols)
	for ci := 0; ci < ncols; ci++ {
		encs[ci] = chooseEnc(rows, ci, zones[ci])
		cm := segColMeta{
			Name:    schema.Columns[ci].Name,
			Type:    int(schema.Columns[ci].Type),
			Enc:     encs[ci],
			HasNull: zones[ci].hasNull,
			AllNull: zones[ci].allNull,
		}
		if zones[ci].hasZone {
			cm.Min, cm.Max = segValOf(zones[ci].min), segValOf(zones[ci].max)
			if cm.Min == nil || cm.Max == nil {
				cm.Min, cm.Max = nil, nil
				zones[ci].hasZone = false
			}
		}
		h.Cols = append(h.Cols, cm)
	}
	hb, err := json.Marshal(h)
	if err != nil {
		return nil, nil, fmt.Errorf("relation: segment header: %w", err)
	}
	buf := make([]byte, 0, len(segMagic)+8+len(hb)+len(rows)*ncols*4)
	buf = append(buf, segMagic...)
	buf = appendU32(buf, uint32(len(hb)))
	buf = append(buf, hb...)
	buf = appendU32(buf, crc32.ChecksumIEEE(hb))
	for ci := 0; ci < ncols; ci++ {
		block, err := encodeColumn(rows, ci, encs[ci])
		if err != nil {
			return nil, nil, err
		}
		buf = appendU32(buf, uint32(len(block)))
		buf = append(buf, block...)
		buf = appendU32(buf, crc32.ChecksumIEEE(block))
	}
	return buf, zones, nil
}

// encodeColumn serializes one column block under the chosen encoding.
func encodeColumn(rows []Row, ci, enc int) ([]byte, error) {
	n := len(rows)
	if enc == encGeneric {
		var b []byte
		for _, r := range rows {
			v := r[ci]
			switch v.Kind {
			case TNull:
				b = append(b, svNull)
			case TString:
				b = append(b, svStr)
				b = appendU32(b, uint32(len(v.S)))
				b = append(b, v.S...)
			case TInt:
				b = append(b, svInt)
				b = appendU64(b, uint64(v.I))
			case TFloat:
				b = append(b, svFloat)
				b = appendU64(b, math.Float64bits(v.F))
			case TBool:
				b = append(b, svBool)
				if v.B {
					b = append(b, 1)
				} else {
					b = append(b, 0)
				}
			case TDate:
				b = append(b, svDate)
				b = appendU64(b, uint64(v.T.Unix()))
			default:
				return nil, fmt.Errorf("relation: segment: unsupported value kind %v", v.Kind)
			}
		}
		return b, nil
	}
	bm := make([]byte, (n+7)/8)
	for i, r := range rows {
		if r[ci].IsNull() {
			bm[i>>3] |= 1 << uint(i&7)
		}
	}
	b := bm
	switch enc {
	case encInt:
		for _, r := range rows {
			b = appendU64(b, uint64(r[ci].I))
		}
	case encFloat:
		for _, r := range rows {
			b = appendU64(b, math.Float64bits(r[ci].F))
		}
	case encDate:
		for _, r := range rows {
			v := r[ci]
			if v.IsNull() {
				b = appendU64(b, 0)
			} else {
				b = appendU64(b, uint64(v.T.Unix()))
			}
		}
	case encBool:
		for _, r := range rows {
			v := r[ci]
			if !v.IsNull() && v.B {
				b = append(b, 1)
			} else {
				b = append(b, 0)
			}
		}
	case encString:
		// Dictionary-encode through the join interner: every value is a
		// string here, so ids come out dense and first-seen ordered — the
		// deterministic order the golden test relies on.
		in := newInterner(n)
		var dict []string
		codes := make([]uint32, n)
		for i, r := range rows {
			v := r[ci]
			if v.IsNull() {
				continue
			}
			id := in.id(v)
			if int(id) == len(dict)+1 {
				dict = append(dict, v.S)
			}
			codes[i] = id
		}
		b = appendU32(b, uint32(len(dict)))
		for _, s := range dict {
			b = appendU32(b, uint32(len(s)))
			b = append(b, s...)
		}
		for _, c := range codes {
			b = appendU32(b, c)
		}
	default:
		return nil, fmt.Errorf("relation: segment: unknown encoding %d", enc)
	}
	return b, nil
}

// decodeSegment parses and validates a segment, returning its header and
// rows. Every failure is a *CorruptError: a segment either decodes
// exactly or not at all.
func decodeSegment(data []byte) (*segHeader, []Row, error) {
	if len(data) < len(segMagic)+4 {
		return nil, nil, corruptf("truncated at %d bytes", len(data))
	}
	if string(data[:len(segMagic)]) != segMagic {
		return nil, nil, corruptf("bad magic %q", data[:len(segMagic)])
	}
	off := len(segMagic)
	hlen := int(binary.LittleEndian.Uint32(data[off:]))
	off += 4
	if hlen < 0 || off+hlen+4 > len(data) {
		return nil, nil, corruptf("header length %d out of range", hlen)
	}
	hb := data[off : off+hlen]
	off += hlen
	if crc32.ChecksumIEEE(hb) != binary.LittleEndian.Uint32(data[off:]) {
		return nil, nil, corruptf("header checksum mismatch")
	}
	off += 4
	var h segHeader
	if err := json.Unmarshal(hb, &h); err != nil {
		return nil, nil, corruptf("header: %v", err)
	}
	if h.Version != segVersion {
		return nil, nil, corruptf("unsupported version %d", h.Version)
	}
	if h.Rows < 0 {
		return nil, nil, corruptf("negative row count %d", h.Rows)
	}
	if len(h.Cols) == 0 && h.Rows != 0 {
		return nil, nil, corruptf("%d rows with no columns", h.Rows)
	}
	cols := make([][]Value, len(h.Cols))
	for ci := range h.Cols {
		if off+4 > len(data) {
			return nil, nil, corruptf("column %d: truncated block length", ci)
		}
		blen := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		if blen < 0 || off+blen+4 > len(data) {
			return nil, nil, corruptf("column %d: block length %d out of range", ci, blen)
		}
		block := data[off : off+blen]
		off += blen
		if crc32.ChecksumIEEE(block) != binary.LittleEndian.Uint32(data[off:]) {
			return nil, nil, corruptf("column %d: block checksum mismatch", ci)
		}
		off += 4
		vals, err := decodeColumn(block, ci, h.Cols[ci].Enc, h.Rows)
		if err != nil {
			return nil, nil, err
		}
		cols[ci] = vals
	}
	if off != len(data) {
		return nil, nil, corruptf("%d trailing bytes", len(data)-off)
	}
	nc := len(h.Cols)
	flat := make([]Value, h.Rows*nc)
	rows := make([]Row, h.Rows)
	for ri := range rows {
		r := flat[ri*nc : (ri+1)*nc : (ri+1)*nc]
		for ci := range cols {
			r[ci] = cols[ci][ri]
		}
		rows[ri] = Row(r)
	}
	return &h, rows, nil
}

// decodeColumn parses one column block into n values.
func decodeColumn(block []byte, ci, enc, n int) ([]Value, error) {
	if enc == encGeneric {
		// Each value takes at least one byte, bounding the allocation by
		// the block size before trusting the declared row count.
		if len(block) < n {
			return nil, corruptf("column %d: generic block %d bytes for %d rows", ci, len(block), n)
		}
		vals := make([]Value, n)
		off := 0
		for i := 0; i < n; i++ {
			kind := block[off]
			off++
			switch kind {
			case svNull:
				vals[i] = Null()
			case svStr:
				if off+4 > len(block) {
					return nil, corruptf("column %d: truncated string length", ci)
				}
				sl := int(binary.LittleEndian.Uint32(block[off:]))
				off += 4
				if sl < 0 || off+sl > len(block) {
					return nil, corruptf("column %d: string length %d out of range", ci, sl)
				}
				vals[i] = Str(string(block[off : off+sl]))
				off += sl
			case svInt, svFloat, svDate:
				if off+8 > len(block) {
					return nil, corruptf("column %d: truncated value", ci)
				}
				u := binary.LittleEndian.Uint64(block[off:])
				off += 8
				switch kind {
				case svInt:
					vals[i] = Int(int64(u))
				case svFloat:
					vals[i] = Float(math.Float64frombits(u))
				default:
					vals[i] = Date(time.Unix(int64(u), 0).UTC())
				}
			case svBool:
				if off >= len(block) {
					return nil, corruptf("column %d: truncated bool", ci)
				}
				vals[i] = Bool(block[off] != 0)
				off++
			default:
				return nil, corruptf("column %d: unknown value kind %d", ci, kind)
			}
			if off > len(block) {
				return nil, corruptf("column %d: truncated block", ci)
			}
		}
		if off != len(block) {
			return nil, corruptf("column %d: %d trailing block bytes", ci, len(block)-off)
		}
		return vals, nil
	}

	bmLen := (n + 7) / 8
	if len(block) < bmLen {
		return nil, corruptf("column %d: truncated null bitmap", ci)
	}
	bm := block[:bmLen]
	body := block[bmLen:]
	isNull := func(i int) bool { return bm[i>>3]&(1<<uint(i&7)) != 0 }
	vals := make([]Value, n)
	switch enc {
	case encInt, encFloat, encDate:
		if len(body) != 8*n {
			return nil, corruptf("column %d: block body %d bytes, want %d", ci, len(body), 8*n)
		}
		for i := 0; i < n; i++ {
			if isNull(i) {
				continue
			}
			u := binary.LittleEndian.Uint64(body[8*i:])
			switch enc {
			case encInt:
				vals[i] = Int(int64(u))
			case encFloat:
				vals[i] = Float(math.Float64frombits(u))
			default:
				vals[i] = Date(time.Unix(int64(u), 0).UTC())
			}
		}
	case encBool:
		if len(body) != n {
			return nil, corruptf("column %d: block body %d bytes, want %d", ci, len(body), n)
		}
		for i := 0; i < n; i++ {
			if !isNull(i) {
				vals[i] = Bool(body[i] != 0)
			}
		}
	case encString:
		if len(body) < 4 {
			return nil, corruptf("column %d: truncated dictionary", ci)
		}
		dictLen := int(binary.LittleEndian.Uint32(body))
		off := 4
		// Every entry takes at least its 4-byte length prefix.
		if dictLen < 0 || dictLen > (len(body)-off)/4 {
			return nil, corruptf("column %d: dictionary size %d out of range", ci, dictLen)
		}
		dict := make([]string, dictLen)
		for d := 0; d < dictLen; d++ {
			if off+4 > len(body) {
				return nil, corruptf("column %d: truncated dictionary entry", ci)
			}
			sl := int(binary.LittleEndian.Uint32(body[off:]))
			off += 4
			if sl < 0 || off+sl > len(body) {
				return nil, corruptf("column %d: dictionary entry length %d out of range", ci, sl)
			}
			dict[d] = string(body[off : off+sl])
			off += sl
		}
		if len(body)-off != 4*n {
			return nil, corruptf("column %d: code block %d bytes, want %d", ci, len(body)-off, 4*n)
		}
		for i := 0; i < n; i++ {
			code := binary.LittleEndian.Uint32(body[off+4*i:])
			if isNull(i) {
				continue
			}
			if code < 1 || int(code) > dictLen {
				return nil, corruptf("column %d: code %d outside dictionary of %d", ci, code, dictLen)
			}
			vals[i] = Str(dict[code-1])
		}
	default:
		return nil, corruptf("column %d: unknown encoding %d", ci, enc)
	}
	return vals, nil
}
