// Package audit implements the monitoring and auditing side of the
// paper's fourth challenge (§2 iv): an append-only JSONL event log of
// every extraction, transformation, load, render and enforcement
// decision; violation scanning; and provenance-backed dispute resolution
// — given any cell of a delivered report, reconstruct where it came from,
// which transformations produced it, and which PLAs were in force.
package audit

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"

	"plabi/internal/enforce"
	"plabi/internal/fault"
	"plabi/internal/obs"
	"plabi/internal/policy"
	"plabi/internal/provenance"
	"plabi/internal/relation"
)

// Event is one audit record. Seq is a logical clock assigned by the log;
// runs are reproducible because no wall-clock time is recorded by default.
type Event struct {
	Seq    int    `json:"seq"`
	Kind   string `json:"kind"` // extract | transform | load | render | decision | violation
	Actor  string `json:"actor,omitempty"`
	Object string `json:"object,omitempty"`
	Detail string `json:"detail,omitempty"`
	// Outcome mirrors enforcement decisions ("mask", "block", ...).
	Outcome string `json:"outcome,omitempty"`
	// PLAs lists the PLA ids involved.
	PLAs []string `json:"plas,omitempty"`
	// Trace is the correlation id of the span covering the operation that
	// emitted the event, joining the audit trail with the obs span stream
	// and metrics.
	Trace string `json:"trace,omitempty"`
}

// ErrAuditUnavailable marks an audit-sink write that failed past the
// retry budget. Fail-closed deployments refuse to serve data whose
// delivery cannot be audited; errors.Is matches it through the engine's
// wrapping.
var ErrAuditUnavailable = errors.New("audit: sink unavailable")

// Log is a thread-safe append-only audit log. An optional sink receives
// every event as one JSON line at append time, so deployments can stream
// the trail to stable storage while keeping the in-memory log queryable.
//
// Sink writes are atomic per event: the whole line (JSON + newline) is
// marshalled first and issued as a single Write. A failed or short write
// marks the sink dirty, and the next event resyncs it with a leading
// newline so one bad write cannot corrupt the adjacent records.
type Log struct {
	mu      sync.Mutex
	events  []Event
	sink    io.Writer
	dirty   bool
	metrics *obs.Metrics
	faults  *fault.Injector
	retry   fault.RetryPolicy
}

// NewLog returns an empty log.
func NewLog() *Log { return &Log{} }

// SetSink streams every subsequently appended event to w as JSONL (nil
// disables streaming). The write happens under the log's lock, preserving
// sequence order in the sink.
func (l *Log) SetSink(w io.Writer) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.sink = w
}

// CloseSink flushes and closes the attached sink, then detaches it, so
// every line issued so far reaches stable storage before the owner lets
// the writer go. Sinks that implement Flush() error (bufio.Writer) are
// flushed; sinks that implement io.Closer (os.File) are closed. The log
// itself stays usable: subsequent appends are in-memory only. Calling
// CloseSink with no sink attached is a no-op.
func (l *Log) CloseSink() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.sink == nil {
		return nil
	}
	var err error
	if f, ok := l.sink.(interface{ Flush() error }); ok {
		err = f.Flush()
	}
	if c, ok := l.sink.(io.Closer); ok {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	l.sink = nil
	l.dirty = false
	if err != nil {
		return fmt.Errorf("audit: close sink: %w", err)
	}
	return nil
}

// SetMetrics wires the log into an obs registry: Append maintains the
// audit.events counter, the audit.depth gauge, audit.sink_drops for
// sink write failures and audit.sink_resyncs for dirty-sink recoveries.
func (l *Log) SetMetrics(m *obs.Metrics) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.metrics = m
}

// SetFaults attaches a fault injector consulted at the audit.sink.write
// site before every sink write attempt (nil detaches).
func (l *Log) SetFaults(fi *fault.Injector) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.faults = fi
}

// SetRetryPolicy bounds the retries of failed sink writes. The zero
// policy (the default) attempts each write exactly once.
func (l *Log) SetRetryPolicy(p fault.RetryPolicy) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.retry = p
}

// Append stamps and stores an event, returning its sequence number. Sink
// failures past the retry budget are counted as drops; use AppendChecked
// when the caller must know the trail reached the sink (fail-closed).
func (l *Log) Append(e Event) int {
	seq, _ := l.AppendChecked(context.Background(), e)
	return seq
}

// AppendChecked stamps and stores an event, returning its sequence
// number and the sink outcome: a nil error means the event is durably in
// the in-memory log AND (when a sink is attached) its line was fully
// written after bounded retries. A non-nil error wraps
// ErrAuditUnavailable; the event still exists in memory and the drop is
// counted, so fail-open callers may ignore the error while fail-closed
// callers block delivery on it.
func (l *Log) AppendChecked(ctx context.Context, e Event) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e.Seq = len(l.events)
	l.events = append(l.events, e)
	l.metrics.Counter("audit.events").Inc()
	l.metrics.Gauge("audit.depth").Set(int64(len(l.events)))
	if l.sink == nil {
		return e.Seq, nil
	}
	if err := l.writeEvent(ctx, e); err != nil {
		l.metrics.Counter("audit.sink_drops").Inc()
		return e.Seq, fmt.Errorf("%w: event %d: %v", ErrAuditUnavailable, e.Seq, err)
	}
	return e.Seq, nil
}

// writeEvent writes one event to the sink as a single atomic line,
// retrying under the log's policy. Called with l.mu held, which also
// serializes the underlying writer.
func (l *Log) writeEvent(ctx context.Context, e Event) error {
	b, err := json.Marshal(e)
	if err != nil {
		return fault.Permanent(err)
	}
	line := append(b, '\n')
	return fault.Retry(ctx, l.retry, l.metrics, func(ctx context.Context) error {
		// A panicking sink (or an injected panic) must release the event
		// loop cleanly: Safely converts it to a permanent internal error.
		return fault.Safely(fault.SiteAuditSink, l.metrics, func() error {
			if err := l.faults.Hit(ctx, fault.SiteAuditSink); err != nil {
				return err
			}
			if l.dirty {
				// A previous write may have emitted a partial line;
				// terminate it so this record starts on a fresh line.
				if _, err := io.WriteString(l.sink, "\n"); err != nil {
					return err
				}
				l.dirty = false
				l.metrics.Counter("audit.sink_resyncs").Inc()
			}
			n, err := l.sink.Write(line)
			if err == nil && n < len(line) {
				err = io.ErrShortWrite
			}
			if err != nil && n > 0 {
				l.dirty = true
			}
			return err
		})
	})
}

// Decision records an enforcement decision as an audit event.
func (l *Log) Decision(actor, object string, d enforce.Decision) int {
	return l.DecisionTraced(actor, object, "", d)
}

// DecisionTraced records an enforcement decision carrying the correlation
// id of the span it was made under, so the audit trail and the obs span
// stream can be joined on Trace.
func (l *Log) DecisionTraced(actor, object, trace string, d enforce.Decision) int {
	seq, _ := l.DecisionTracedChecked(context.Background(), actor, object, trace, d)
	return seq
}

// DecisionTracedChecked is DecisionTraced reporting the sink outcome,
// for fail-closed callers (see AppendChecked).
func (l *Log) DecisionTracedChecked(ctx context.Context, actor, object, trace string, d enforce.Decision) (int, error) {
	kind := "decision"
	if d.Outcome == enforce.Block {
		kind = "violation"
	}
	return l.AppendChecked(ctx, Event{
		Kind: kind, Actor: actor, Object: object,
		Detail:  d.Rule + ": " + d.Detail + evidenceSuffix(d.Evidence),
		Outcome: d.Outcome.String(),
		PLAs:    d.PLAs,
		Trace:   trace,
	})
}

func evidenceSuffix(ev []string) string {
	if len(ev) == 0 {
		return ""
	}
	return " [" + strings.Join(ev, "; ") + "]"
}

// Events returns a snapshot of all events.
func (l *Log) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Event(nil), l.events...)
}

// Len returns the number of events.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// WriteJSONL streams the log as JSON lines.
func (l *Log) WriteJSONL(w io.Writer) error {
	for _, e := range l.Events() {
		b, err := json.Marshal(e)
		if err != nil {
			return fmt.Errorf("audit: marshal: %w", err)
		}
		if _, err := w.Write(append(b, '\n')); err != nil {
			return fmt.Errorf("audit: write: %w", err)
		}
	}
	return nil
}

// ReadJSONL loads a log previously written with WriteJSONL.
func ReadJSONL(r io.Reader) (*Log, error) {
	l := NewLog()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var e Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			return nil, fmt.Errorf("audit: parse line: %w", err)
		}
		e.Seq = 0 // re-stamped by Append
		l.Append(e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("audit: read: %w", err)
	}
	return l, nil
}

// Violations returns the recorded violation events.
func (l *Log) Violations() []Event {
	var out []Event
	for _, e := range l.Events() {
		if e.Kind == "violation" {
			out = append(out, e)
		}
	}
	return out
}

// ByKind returns events of one kind.
func (l *Log) ByKind(kind string) []Event {
	var out []Event
	for _, e := range l.Events() {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// DisputeReport is the evidence bundle produced for a challenged report
// cell: its value, the source cells it derives from, the transformation
// chain, and the PLAs governing the origin tables.
type DisputeReport struct {
	Report string
	Row    int
	Column string
	Value  relation.Value
	// SourceCells are the concrete origin cells (where-provenance).
	SourceCells []provenance.SourceCell
	// Transformations is the upstream derivation, one line per step.
	Transformations []string
	// PLAs lists the governing agreements by id per origin table.
	PLAs map[string][]string
}

// String renders the dispute evidence.
func (d *DisputeReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "dispute: %s[%d].%s = %v\n", d.Report, d.Row, d.Column, d.Value)
	b.WriteString("  source cells:\n")
	for _, c := range d.SourceCells {
		fmt.Fprintf(&b, "    %s\n", c)
	}
	if len(d.Transformations) > 0 {
		b.WriteString("  transformations:\n")
		for _, t := range d.Transformations {
			fmt.Fprintf(&b, "    %s\n", t)
		}
	}
	b.WriteString("  governing PLAs:\n")
	for table, ids := range d.PLAs {
		fmt.Fprintf(&b, "    %s: %s\n", table, strings.Join(ids, ", "))
	}
	return b.String()
}

// Auditor resolves disputes and replays compliance over rendered outputs.
type Auditor struct {
	Registry *policy.Registry
	Tracer   *provenance.Tracer
	Graph    *provenance.Graph
}

// ResolveDispute assembles the evidence bundle for one cell of a rendered
// report table (which must carry lineage).
func (a *Auditor) ResolveDispute(rendered *relation.Table, row int, col string) (*DisputeReport, error) {
	ct, err := a.Tracer.TraceCell(rendered, row, col)
	if err != nil {
		return nil, fmt.Errorf("audit: dispute: %w", err)
	}
	d := &DisputeReport{
		Report: rendered.Name, Row: row, Column: col, Value: ct.Value,
		SourceCells: ct.Cells,
		PLAs:        map[string][]string{},
	}
	if a.Graph != nil {
		for _, s := range a.Graph.Upstream(rendered.Name) {
			d.Transformations = append(d.Transformations, s.String())
		}
	}
	tables := map[string]bool{}
	for _, ref := range ct.Rows {
		tables[ref.Table] = true
	}
	for table := range tables {
		for _, lvl := range policy.Levels() {
			for _, p := range a.Registry.ForScope(lvl, table).PLAs {
				d.PLAs[table] = append(d.PLAs[table], p.ID)
			}
		}
		if len(d.PLAs[table]) == 0 {
			d.PLAs[table] = []string{"(none)"}
		}
	}
	return d, nil
}
