module plabi

go 1.22
