// Command experiments regenerates the paper's figures as measured
// results (experiments E1–E11 of DESIGN.md).
//
// Usage:
//
//	experiments            # run everything
//	experiments -exp e5    # run one experiment
//	experiments -list      # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"

	"plabi/internal/experiments"
)

func main() {
	exp := flag.String("exp", "", "experiment id to run (default: all)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	if *exp != "" {
		res, err := experiments.Run(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Print(res)
		return
	}
	all, err := experiments.RunAll()
	for _, res := range all {
		fmt.Println(res)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
