package etl

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"plabi/internal/fault"
	"plabi/internal/relation"
)

// This file implements incremental refresh: source deltas
// (insert/update/delete batches keyed per source table) propagated
// step-by-step through an already-run pipeline. Each step consumes the
// changes of its inputs and produces the change of its output —
// row-wise transforms splice recomputed rows, filters and left-append
// joins extend their previous output, aggregates re-emit from a
// retained GroupBy accumulator, and anything else reruns wholesale.
// The whole application is atomic against the staging area: any error
// (injected fault, violation, validation) restores the pre-delta
// staging map and leaves the previous outputs serving.

// RowUpdate replaces the values of one existing row.
type RowUpdate struct {
	// Row is the row index in the pre-delta version of the table.
	Row int
	// Vals is the full replacement row (source-table arity).
	Vals relation.Row
}

// Delta is one source-table change set: rows to append, rows to replace
// in place, and rows to delete (pre-delta indices).
type Delta struct {
	Source  string
	Table   string
	Inserts []relation.Row
	Updates []RowUpdate
	Deletes []int
}

// Batch groups the deltas applied and committed together.
type Batch struct {
	Deltas []Delta
}

// Change describes how one relation changed during a delta application.
// The zero Change means "no rows changed".
type Change struct {
	// Appended counts rows appended at the end of the table.
	Appended int
	// Updated lists row indices replaced in place (indices are stable:
	// they are valid in both the old and new version).
	Updated []int
	// Rebuilt marks a wholesale recompute — the positional mapping to
	// the previous version is unknown (deletes shift every later row's
	// index; opaque transforms promise nothing).
	Rebuilt bool
}

// AppendOnly reports whether the change only appended rows.
func (ch Change) AppendOnly() bool { return !ch.Rebuilt && len(ch.Updated) == 0 }

// Empty reports whether nothing changed.
func (ch Change) Empty() bool { return !ch.Rebuilt && ch.Appended == 0 && len(ch.Updated) == 0 }

// Merge combines two successive changes to the same relation into one
// conservative summary.
func (ch Change) Merge(next Change) Change {
	if ch.Rebuilt || next.Rebuilt {
		return Change{Rebuilt: true}
	}
	out := Change{Appended: ch.Appended + next.Appended}
	out.Updated = append(append([]int(nil), ch.Updated...), next.Updated...)
	return out
}

// Normalize sorts and dedups Updated and drops updates that land inside
// the appended window of a table with finalLen rows (the append
// recompute already covers them).
func (ch Change) Normalize(finalLen int) Change {
	if ch.Rebuilt || len(ch.Updated) == 0 {
		return ch
	}
	sort.Ints(ch.Updated)
	kept := ch.Updated[:0]
	prev := -1
	for _, ri := range ch.Updated {
		if ri == prev || ri >= finalLen-ch.Appended {
			continue
		}
		kept = append(kept, ri)
		prev = ri
	}
	ch.Updated = kept
	return ch
}

// Apply returns a new version of t with the delta applied, never
// mutating t (copy-on-write: concurrent readers keep the old version),
// plus the resulting Change. Updates and deletes address pre-delta row
// indices; inserts append. A delta with deletes reports Rebuilt, since
// deletions shift every later row index and positional lineage with it.
func (d *Delta) Apply(t *relation.Table) (*relation.Table, Change, error) {
	m, err := t.Materialize()
	if err != nil {
		return nil, Change{}, err
	}
	arity := t.Schema.Len()
	rows := append([]relation.Row(nil), m.Rows...)
	var ch Change
	for _, u := range d.Updates {
		if u.Row < 0 || u.Row >= len(rows) {
			return nil, Change{}, fmt.Errorf("etl: delta update row %d out of range [0,%d) in %q", u.Row, len(rows), t.Name)
		}
		if len(u.Vals) != arity {
			return nil, Change{}, fmt.Errorf("etl: delta update arity %d != %d in %q", len(u.Vals), arity, t.Name)
		}
		rows[u.Row] = u.Vals
		ch.Updated = append(ch.Updated, u.Row)
	}
	if len(d.Deletes) > 0 {
		del := append([]int(nil), d.Deletes...)
		sort.Sort(sort.Reverse(sort.IntSlice(del)))
		seen := false
		prev := 0
		for _, ri := range del {
			if seen && ri == prev {
				continue
			}
			seen, prev = true, ri
			if ri < 0 || ri >= len(rows) {
				return nil, Change{}, fmt.Errorf("etl: delta delete row %d out of range [0,%d) in %q", ri, len(rows), t.Name)
			}
			rows = append(rows[:ri], rows[ri+1:]...)
		}
		ch = Change{Rebuilt: true}
	}
	for _, r := range d.Inserts {
		if len(r) != arity {
			return nil, Change{}, fmt.Errorf("etl: delta insert arity %d != %d in %q", len(r), arity, t.Name)
		}
		rows = append(rows, r)
	}
	if !ch.Rebuilt {
		ch.Appended = len(d.Inserts)
		ch = ch.Normalize(len(rows))
	}
	out := &relation.Table{Name: t.Name, Schema: t.Schema, Base: t.Base, Rows: rows}
	return out, ch, nil
}

// DeltaResult reports one incremental refresh.
type DeltaResult struct {
	// StepsIncremental counts steps recomputed from their input deltas
	// only (splice, append, retained aggregate, extract re-point).
	StepsIncremental int
	// StepsRebuilt counts steps rerun wholesale.
	StepsRebuilt int
	// StepsUntouched counts steps whose inputs did not change.
	StepsUntouched int
	// Changed maps each changed staging relation (lower-cased name,
	// including the source-qualified inputs fed in) to its change.
	Changed map[string]Change
}

// ApplyDelta propagates per-relation source changes through the
// pipeline. changes is keyed by the extract input names
// ("source.table", lower-cased or not); the sources' tables must
// already hold their new versions. Steps whose inputs are untouched are
// skipped outright — their staging outputs, and any folded render built
// on them, stay valid.
//
// The application is atomic: on any error — injected fault at the
// etl.delta site, a violation surfaced by a guard re-check, a
// validation failure — the staging area is restored to its pre-delta
// state and the error returned. Callers then retry or fall back to a
// full run; the sources are theirs to roll back.
func (p *Pipeline) ApplyDelta(ctx context.Context, c *Context, changes map[string]Change) (DeltaResult, error) {
	res := DeltaResult{Changed: map[string]Change{}}
	for k, v := range changes {
		res.Changed[strings.ToLower(k)] = v
	}
	c.setCtx(ctx)
	defer c.setCtx(nil)
	start := time.Now()

	// Staging tables are copy-on-write, so a shallow map snapshot is a
	// full rollback point.
	c.mu.RLock()
	snap := make(map[string]*relation.Table, len(c.Staging))
	for k, v := range c.Staging {
		snap[k] = v
	}
	c.mu.RUnlock()
	rollback := func() {
		c.mu.Lock()
		c.Staging = snap
		c.mu.Unlock()
	}

	for _, s := range p.Steps {
		if err := ctx.Err(); err != nil {
			rollback()
			return res, err
		}
		relevant := false
		for _, in := range s.Inputs() {
			if ch, ok := res.Changed[strings.ToLower(in)]; ok && !ch.Empty() {
				relevant = true
				break
			}
		}
		if !relevant {
			res.StepsUntouched++
			continue
		}
		var (
			outCh       Change
			incremental bool
		)
		err := fault.Safely("etl.delta("+s.Name()+")", c.Metrics, func() error {
			if err := c.Faults.Hit(ctx, fault.SiteETLDelta); err != nil {
				return err
			}
			var serr error
			outCh, incremental, serr = p.stepDelta(ctx, c, s, res.Changed)
			return serr
		})
		if err != nil {
			rollback()
			return res, fmt.Errorf("etl: delta at step %q: %w", s.Name(), err)
		}
		if incremental {
			res.StepsIncremental++
			c.Metrics.Counter("etl.delta.incremental").Inc()
		} else {
			res.StepsRebuilt++
			c.Metrics.Counter("etl.delta.rebuilt").Inc()
		}
		key := strings.ToLower(s.Output())
		if prev, ok := res.Changed[key]; ok {
			outCh = prev.Merge(outCh)
		}
		res.Changed[key] = outCh
		rowsOut, _ := c.rows(s.Output())
		if c.Observe != nil {
			c.Observe(s.Name(), s.Op(), s.Output(), countRows(c, s.Inputs()), rowsOut, nil)
		}
		c.Graph.AddStep(s.Op(), s.Inputs(), s.Output(), s.Name()+" (delta)", countRows(c, s.Inputs()), rowsOut)
	}
	c.Metrics.Histogram("etl.delta.duration").Observe(time.Since(start))
	c.Metrics.Counter("etl.deltas").Inc()
	return res, nil
}

// stepDelta recomputes one step from its input changes. It returns the
// change of the step's output and whether the recompute was incremental
// (false = the step reran wholesale).
func (p *Pipeline) stepDelta(ctx context.Context, c *Context, s Step, changes map[string]Change) (Change, bool, error) {
	rerun := func() (Change, bool, error) {
		if err := s.Run(c); err != nil {
			return Change{}, false, err
		}
		return Change{Rebuilt: true}, false, nil
	}
	switch st := s.(type) {
	case *Extract:
		// The source map already holds the new table; re-point the
		// staging alias at it and pass the source change through.
		src, ok := st.Source.Table(st.Table)
		if !ok {
			return Change{}, false, fmt.Errorf("source %q has no table %q", st.Source.Name, st.Table)
		}
		c.Put(st.As, src)
		return changes[strings.ToLower(st.Source.Name+"."+st.Table)], true, nil
	case *Transform:
		return p.transformDelta(ctx, c, st, rerun, changes)
	case *JoinStep:
		return p.joinDelta(c, st, rerun, changes)
	case *EntityResolution:
		return p.erDelta(ctx, c, st, rerun, changes)
	case *AggregateStep:
		return p.aggDelta(c, st, changes)
	default:
		return rerun()
	}
}

// appendedIdx lists the indices of the appended window of t under ch.
func appendedIdx(t *relation.Table, ch Change) []int {
	n := t.NumRows()
	idx := make([]int, 0, ch.Appended)
	for i := n - ch.Appended; i < n; i++ {
		idx = append(idx, i)
	}
	return idx
}

// seq returns [from, to).
func seq(from, to int) []int {
	idx := make([]int, 0, to-from)
	for i := from; i < to; i++ {
		idx = append(idx, i)
	}
	return idx
}

// spliceOutputs applies a row-wise recompute to the previous output:
// subOut's first len(updated) rows replace the updated positions, the
// rest append.
func spliceOutputs(oldOut, subOut *relation.Table, updated []int) (*relation.Table, error) {
	out := oldOut
	if len(updated) > 0 {
		head, err := relation.SliceRows(subOut, seq(0, len(updated)))
		if err != nil {
			return nil, err
		}
		if out, err = relation.SpliceRows(out, updated, head); err != nil {
			return nil, err
		}
	}
	if subOut.NumRows() > len(updated) {
		tail, err := relation.SliceRows(subOut, seq(len(updated), subOut.NumRows()))
		if err != nil {
			return nil, err
		}
		var err2 error
		if out, err2 = relation.ConcatRows(out, tail); err2 != nil {
			return nil, err2
		}
	}
	return out, nil
}

func (p *Pipeline) transformDelta(ctx context.Context, c *Context, t *Transform, rerun func() (Change, bool, error), changes map[string]Change) (Change, bool, error) {
	ch := changes[strings.ToLower(t.Input)]
	oldOut, oerr := c.Get(t.Out)
	if oerr != nil || ch.Rebuilt || t.Kind == DeltaOpaque {
		return rerun()
	}
	in, err := c.Get(t.Input)
	if err != nil {
		return Change{}, false, err
	}
	switch t.Kind {
	case DeltaRowWise:
		dirty := append(append([]int(nil), ch.Updated...), appendedIdx(in, ch)...)
		sub, err := relation.SliceRows(in, dirty)
		if err != nil {
			return Change{}, false, err
		}
		subOut, err := t.Fn(ctx, sub)
		if err != nil {
			return Change{}, false, err
		}
		if subOut.NumRows() != len(dirty) {
			// Fn is not row-wise over this input after all.
			return rerun()
		}
		out, err := spliceOutputs(oldOut, subOut, ch.Updated)
		if err != nil {
			return Change{}, false, err
		}
		c.Put(t.Out, out)
		return Change{Appended: ch.Appended, Updated: append([]int(nil), ch.Updated...)}, true, nil
	case DeltaFilter:
		if len(ch.Updated) > 0 {
			return rerun()
		}
		sub, err := relation.SliceRows(in, appendedIdx(in, ch))
		if err != nil {
			return Change{}, false, err
		}
		subOut, err := t.Fn(ctx, sub)
		if err != nil {
			return Change{}, false, err
		}
		out, err := relation.ConcatRows(oldOut, subOut)
		if err != nil {
			return Change{}, false, err
		}
		c.Put(t.Out, out)
		return Change{Appended: subOut.NumRows()}, true, nil
	}
	return rerun()
}

// joinDelta handles the one join shape that distributes over deltas
// with positional stability: a pure append on the left with an
// untouched right side. Join output is left-major (for each left row in
// order, its matches in right order), so joining only the appended left
// rows and concatenating reproduces the full join byte-for-byte.
func (p *Pipeline) joinDelta(c *Context, j *JoinStep, rerun func() (Change, bool, error), changes map[string]Change) (Change, bool, error) {
	lch, lok := changes[strings.ToLower(j.Left)]
	_, rok := changes[strings.ToLower(j.Right)]
	oldOut, oerr := c.Get(j.Out)
	if oerr != nil || rok || !lok || !lch.AppendOnly() {
		return rerun()
	}
	l, err := c.Get(j.Left)
	if err != nil {
		return Change{}, false, err
	}
	r, err := c.Get(j.Right)
	if err != nil {
		return Change{}, false, err
	}
	// Re-check the join permission: the appended rows derive from the
	// same base tables, but the PLAs may have moved since the full run.
	for _, lb := range baseTablesOf(l) {
		for _, rb := range baseTablesOf(r) {
			if lb == rb {
				continue
			}
			if err := c.Guard.CheckJoin(lb, rb); err != nil {
				return Change{}, false, &ViolationError{Step: j.name, Rule: "join-permission",
					Detail: fmt.Sprintf("%s join %s: %v", lb, rb, err), Cause: err}
			}
		}
	}
	dl, err := relation.SliceRows(l, appendedIdx(l, lch))
	if err != nil {
		return Change{}, false, err
	}
	dout, err := relation.Join(relation.Rename(dl, "l"), relation.Rename(r, "r"), j.On, j.Kind)
	if err != nil {
		return Change{}, false, err
	}
	if unq, uerr := dout.Schema.Unqualify(); uerr == nil {
		dout.Schema = unq
	}
	dout.Name = j.Out
	out, err := relation.ConcatRows(oldOut, dout)
	if err != nil {
		return Change{}, false, err
	}
	c.Put(j.Out, out)
	return Change{Appended: dout.NumRows()}, true, nil
}

// erDelta re-resolves only the changed input rows against an unchanged
// canonical table (a canon change invalidates every match and reruns).
func (p *Pipeline) erDelta(ctx context.Context, c *Context, e *EntityResolution, rerun func() (Change, bool, error), changes map[string]Change) (Change, bool, error) {
	ich, iok := changes[strings.ToLower(e.Input)]
	_, cok := changes[strings.ToLower(e.Canon)]
	oldOut, oerr := c.Get(e.Out)
	if oerr != nil || cok || !iok || ich.Rebuilt {
		return rerun()
	}
	in, err := c.Get(e.Input)
	if err != nil {
		return Change{}, false, err
	}
	canon, err := c.Get(e.Canon)
	if err != nil {
		return Change{}, false, err
	}
	for _, donor := range baseTablesOf(canon) {
		if err := c.Guard.CheckIntegration(donor, e.Beneficiary); err != nil {
			return Change{}, false, &ViolationError{Step: e.name, Rule: "integration-permission",
				Detail: fmt.Sprintf("donor %s cleaning data of %s: %v", donor, e.Beneficiary, err), Cause: err}
		}
	}
	ci := canon.Schema.Index(e.CanonColumn)
	if ci < 0 {
		return Change{}, false, fmt.Errorf("entity-resolution: canonical column %q not found", e.CanonColumn)
	}
	canon, err = canon.Materialize()
	if err != nil {
		return Change{}, false, err
	}
	matcher := newMatcher()
	for _, r := range canon.Rows {
		if v := r[ci]; v.Kind == relation.TString {
			matcher.add(v.S)
		}
	}
	ti := in.Schema.Index(e.Column)
	if ti < 0 {
		return Change{}, false, fmt.Errorf("entity-resolution: column %q not found", e.Column)
	}
	dirty := append(append([]int(nil), ich.Updated...), appendedIdx(in, ich)...)
	sub, err := relation.SliceRows(in, dirty)
	if err != nil {
		return Change{}, false, err
	}
	resolved, unmatched := 0, 0
	subOut, err := mapCol(ctx, sub, ti, func(v relation.Value) relation.Value {
		if v.Kind != relation.TString {
			return v
		}
		best, ok := matcher.match(v.S, e.Threshold)
		if !ok {
			unmatched++
			return v
		}
		if best != v.S {
			resolved++
		}
		return relation.Str(best)
	})
	if err != nil {
		return Change{}, false, err
	}
	out, err := spliceOutputs(oldOut, subOut, ich.Updated)
	if err != nil {
		return Change{}, false, err
	}
	out.Name = e.Out
	c.Put(e.Out, out)
	// Stats accumulate across incremental refreshes (a full rerun
	// resets them).
	e.Resolved += resolved
	e.Unmatched += unmatched
	return Change{Appended: ich.Appended, Updated: append([]int(nil), ich.Updated...)}, true, nil
}

// aggDelta re-emits the grouped output from the retained accumulator.
// An append-only input change feeds only the new rows; anything else —
// including a state left behind by a rolled-back delta, detected by the
// source-row count — rebuilds the state from the full input. Either way
// the grouped output can change in arbitrary positions, so downstream
// consumers see Rebuilt.
func (p *Pipeline) aggDelta(c *Context, a *AggregateStep, changes map[string]Change) (Change, bool, error) {
	ch := changes[strings.ToLower(a.Input)]
	in, err := c.Get(a.Input)
	if err != nil {
		return Change{}, false, err
	}
	oldLen := in.NumRows() - ch.Appended
	if ch.AppendOnly() && a.state != nil && a.state.SourceRows() == oldLen {
		if err := a.state.AddTable(in, oldLen); err != nil {
			return Change{}, false, err
		}
		out := a.state.Result()
		out.Name = a.Out
		c.Put(a.Out, out)
		return Change{Rebuilt: true}, true, nil
	}
	st, err := relation.NewGroupByState(in, a.Keys, a.Aggs)
	if err != nil {
		return Change{}, false, err
	}
	if err := st.AddTable(in, 0); err != nil {
		return Change{}, false, err
	}
	a.state = st
	out := st.Result()
	out.Name = a.Out
	c.Put(a.Out, out)
	return Change{Rebuilt: true}, false, nil
}
