package enforce

import (
	"fmt"

	"plabi/internal/policy"
)

// PLAGuard is the policy-backed etl.Guard: joins and integrations during
// ETL are checked against the PLAs elicited for the involved base tables
// at the source and warehouse levels (Fig. 3).
type PLAGuard struct {
	Registry *policy.Registry
	// Levels are the PLA levels consulted; defaults to source+warehouse.
	Levels []policy.Level
}

// NewPLAGuard builds a guard over the registry consulting source- and
// warehouse-level PLAs.
func NewPLAGuard(reg *policy.Registry) *PLAGuard {
	return &PLAGuard{Registry: reg, Levels: []policy.Level{policy.LevelSource, policy.LevelWarehouse}}
}

func (g *PLAGuard) compositeFor(scope string) *policy.Composite {
	var plas []*policy.PLA
	for _, lvl := range g.Levels {
		plas = append(plas, g.Registry.ForScope(lvl, scope).PLAs...)
	}
	return policy.Compose(plas...)
}

// CheckJoin implements etl.Guard: both sides' PLAs must permit joining
// with the other. A refusal is a *BlockedError wrapping ErrPLAViolation.
func (g *PLAGuard) CheckJoin(left, right string) error {
	if ok, reason := g.compositeFor(left).JoinAllowed(right); !ok {
		return g.blockJoin(left, right, reason)
	}
	if ok, reason := g.compositeFor(right).JoinAllowed(left); !ok {
		return g.blockJoin(right, left, reason)
	}
	return nil
}

func (g *PLAGuard) blockJoin(a, b, reason string) error {
	return &BlockedError{Op: "join", Subject: a + " JOIN " + b, Decisions: []Decision{{
		Outcome: Block, Rule: "join-permission", Subject: a + " JOIN " + b, PLAs: []string{reason},
		Detail: fmt.Sprintf("PLA %s forbids joining %s with %s", reason, a, b),
	}}}
}

// CheckIntegration implements etl.Guard: the donor table's PLAs must
// permit using its data for the beneficiary owner. A refusal is a
// *BlockedError wrapping ErrPLAViolation.
func (g *PLAGuard) CheckIntegration(donorTable, beneficiaryOwner string) error {
	if ok, reason := g.compositeFor(donorTable).IntegrationAllowed(beneficiaryOwner); !ok {
		return &BlockedError{Op: "integration", Subject: donorTable, Decisions: []Decision{{
			Outcome: Block, Rule: "integration-permission", Subject: donorTable, PLAs: []string{reason},
			Detail: fmt.Sprintf("PLA %s forbids integration of %s for %s", reason, donorTable, beneficiaryOwner),
		}}}
	}
	return nil
}
