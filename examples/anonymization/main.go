// Anonymization: the paper's Fig. 2a release filter — a municipality
// releases resident demographics to the BI provider only after
// k-anonymization with l-diversity, plus pseudonymized identities; the
// aggregate report computed downstream keeps its shape.
package main

import (
	_ "embed"
	"fmt"
	"log"

	"plabi"
	"plabi/internal/anon"
	"plabi/internal/workload"
)

// The municipality's release agreement, kept as a standalone lintable
// DSL file (`plalint policy.pla`).
//
//go:embed policy.pla
var policyDSL string

func main() {
	ds, err := workload.Generate(workload.DefaultConfig(7))
	if err != nil {
		log.Fatal(err)
	}

	engine := plabi.Open()
	engine.AddSource(plabi.NewSource("municipality", "municipality", ds.Residents))
	if err := engine.AddPLAs(policyDSL); err != nil {
		log.Fatal(err)
	}

	released, rep, err := engine.ReleaseSource(ds.Residents)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("released %d of %d rows (%d suppressed to honour k=5/l=2)\n",
		released.NumRows(), rep.RowsIn, rep.RowsSuppressed)
	fmt.Printf("equivalence classes: %d, average size %.1f, discernibility %d\n",
		rep.KAnonStats.Partitions, rep.KAnonStats.AvgClassSize, rep.KAnonStats.Discernibility)
	fmt.Printf("anonymized columns: %v\n\n", rep.ColumnsAnon)

	// Show a few released rows: identities are pseudonyms, QI are ranges.
	fmt.Println("sample of the BI-accessible data:")
	sample := released.Clone()
	if sample.NumRows() > 5 {
		sample.Rows = sample.Rows[:5]
	}
	fmt.Println(sample)

	// Verify the guarantees hold on what actually left the source.
	okK, _, err := anon.CheckKAnonymity(released, 5, []string{"age", "zip"})
	if err != nil {
		log.Fatal(err)
	}
	okL, err := anon.CheckLDiversity(released, 2, []string{"age", "zip"}, "municipality")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("5-anonymity holds: %v, 2-diversity holds: %v\n", okK, okL)
}
