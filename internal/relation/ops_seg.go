package relation

// ops_seg.go holds the segment-backed operator paths. The strategy is
// partition-wise delegation: stream each surviving partition as an
// in-memory sub-table (segtable.go) and run the regular mode-dispatched
// operator on it, so every execution mode produces byte-identical rows,
// lineage and errors to the fully in-memory run — the mode-equivalence
// suite pins this. Operators that inherently need the whole relation at
// once (Project, Sort, Union, ...) materialize first in ops.go.

// selectSeg filters a segment-backed table: zone maps prune whole
// partitions before decode, surviving partitions are filtered by the
// current execution mode's Select and concatenated in partition order.
func selectSeg(t *Table, pred Expr) (*Table, error) {
	out := t.derived(t.Name + "_sel")
	sc := newSegScan(t, pred)
	defer sc.Close()
	for {
		pt, err := sc.nextTable()
		if err != nil {
			return nil, err
		}
		if pt == nil {
			return out, nil
		}
		sub, err := Select(pt, pred)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, sub.Rows...)
		out.Lineage = append(out.Lineage, sub.Lineage...)
	}
}

// groupBySeg aggregates a segment-backed table by streaming partitions
// through the shared row-at-a-time accumulator core (groupByStream).
// The core is the one the reference GroupBy uses, so grouping order,
// aggregate values and group lineage come out byte-identical.
func groupBySeg(t *Table, keys []string, aggs []AggSpec) (*Table, error) {
	return groupByStream(t, keys, aggs, func(visit func(Row, LineageSet)) error {
		sc := newSegScan(t, nil)
		defer sc.Close()
		for {
			pt, err := sc.nextTable()
			if err != nil {
				return err
			}
			if pt == nil {
				return nil
			}
			for ri, r := range pt.Rows {
				visit(r, pt.Lineage[ri])
			}
		}
	})
}

// joinSeg joins when either side is segment-backed. The right side is
// materialized (it is the hash-build side in every fast path); a
// segment-backed left side streams partition sub-tables through the
// mode-dispatched Join, concatenating in partition order — the same
// output order as the in-memory join, which streams the left side.
func joinSeg(l, r *Table, pred Expr, kind JoinKind) (*Table, error) {
	rm, err := r.Materialize()
	if err != nil {
		return nil, err
	}
	if l.seg == nil {
		return Join(l, rm, pred, kind)
	}
	out := newJoinShell(l, rm)
	sc := newSegScan(l, nil)
	defer sc.Close()
	for {
		pt, err := sc.nextTable()
		if err != nil {
			return nil, err
		}
		if pt == nil {
			return out, nil
		}
		sub, err := Join(pt, rm, pred, kind)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, sub.Rows...)
		out.Lineage = append(out.Lineage, sub.Lineage...)
	}
}

// renameSeg renames a segment-backed table without materializing
// per-row lineage: the copied backing keeps its origin, and RowLineage
// reconstructs {origin#i} positionally — exactly the sets the in-memory
// Rename writes out one by one.
func renameSeg(t *Table, name string) *Table {
	out := t.derived(name)
	out.Schema = t.Schema.Qualify(name)
	b := *t.seg
	out.seg = &b
	if !t.Base && t.Lineage != nil {
		out.Lineage = t.Lineage
	}
	return out
}
