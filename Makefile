# Developer entry points. CI (.github/workflows/ci.yml) runs `make ci`.

GO ?= go

.PHONY: build vet test race lint bench-smoke bench ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Static analysis: go vet plus plalint over every shipped PLA document
# and the full healthcare deployment (error severity gates the build;
# the scenario's intentionally blocked report stays a warning).
lint: vet
	$(GO) run ./cmd/plalint docs/sample.pla
	for f in examples/*/policy.pla; do $(GO) run ./cmd/plalint $$f || exit 1; done
	$(GO) run ./cmd/plalint -severity error -healthcare

# One-iteration benchmark pass: catches bitrot in the bench harness
# without paying for a full measurement run. BENCH_OBS makes the render
# benchmarks dump the engine's metrics snapshot alongside the timings.
bench-smoke:
	BENCH_OBS=BENCH_obs.json $(GO) test -run XXX -bench 'ConcurrentRender' -benchtime=1x .

bench:
	BENCH_OBS=BENCH_obs.json $(GO) test -run XXX -bench . -benchtime=2s .

ci: lint build race bench-smoke
