// Package policy defines the Privacy Level Agreement (PLA) model — the
// paper's unit of privacy requirements — together with a textual DSL for
// authoring PLAs, a pretty-printer, validation, and the composition
// (integration) of PLAs from multiple sources under most-restrictive-wins
// semantics (§2 challenge ii).
//
// A PLA is attached at one of the four abstraction levels the paper
// studies (source, warehouse/ETL, meta-report, report) and carries the
// annotation kinds of §5: attribute access rules, aggregation thresholds,
// anonymization requirements, join permissions/prohibitions, integration
// (cleaning) permissions, retention, and intensional row conditions.
package policy

import (
	"fmt"
	"strings"

	"plabi/internal/relation"
)

// Level is the abstraction level a PLA is attached to. The paper's Fig. 5
// orders these by increasing ease of elicitation and decreasing stability.
type Level int

// PLA attachment levels.
const (
	LevelSource Level = iota
	LevelWarehouse
	LevelMetaReport
	LevelReport
)

var levelNames = map[Level]string{
	LevelSource:     "source",
	LevelWarehouse:  "warehouse",
	LevelMetaReport: "metareport",
	LevelReport:     "report",
}

// String returns the DSL spelling of the level.
func (l Level) String() string { return levelNames[l] }

// ParseLevel parses a DSL level name.
func ParseLevel(s string) (Level, error) {
	for l, n := range levelNames {
		if strings.EqualFold(s, n) {
			return l, nil
		}
	}
	return 0, fmt.Errorf("policy: unknown level %q", s)
}

// Levels lists all levels in continuum order (Fig. 5).
func Levels() []Level {
	return []Level{LevelSource, LevelWarehouse, LevelMetaReport, LevelReport}
}

// Pos locates a construct in its PLA DSL source document (1-based line
// and byte column). The zero Pos means "position unknown" — e.g. a PLA
// assembled in code rather than parsed. Pos is diagnostic metadata only:
// it does not participate in JSON round-trips, printing, or equality of
// the rules it annotates.
type Pos struct {
	File string
	Line int
	Col  int
}

// IsValid reports whether the position carries line information.
func (p Pos) IsValid() bool { return p.Line > 0 }

// String renders "file:line:col" ("line:col" without a file name, and ""
// for the zero Pos).
func (p Pos) String() string {
	if !p.IsValid() {
		return ""
	}
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// Effect is the polarity of a rule.
type Effect int

// Rule effects.
const (
	Allow Effect = iota
	Deny
)

// String returns "allow" or "deny".
func (e Effect) String() string {
	if e == Deny {
		return "deny"
	}
	return "allow"
}

// AccessRule grants or denies visibility of one attribute to a set of
// roles, optionally restricted to purposes and an intensional condition
// evaluated on the source rows supporting the value (§5 i, and the HIV
// example of §5).
type AccessRule struct {
	Effect    Effect
	Attribute string
	Roles     []string // empty = every role
	Purposes  []string // empty = every purpose
	When      relation.Expr
	Pos       Pos
}

// Matches reports whether the rule applies to the attribute/role/purpose
// triple (the condition is evaluated separately, against source rows).
func (r AccessRule) Matches(attr, role, purpose string) bool {
	if !strings.EqualFold(r.Attribute, attr) && r.Attribute != "*" {
		return false
	}
	if len(r.Roles) > 0 && !containsFold(r.Roles, role) {
		return false
	}
	if len(r.Purposes) > 0 && purpose != "" && !containsFold(r.Purposes, purpose) {
		return false
	}
	return true
}

// AggregationRule requires each released aggregate row to be supported by
// at least MinCount base elements (§5 ii). When By is set, the threshold
// counts distinct values of that source attribute (e.g. distinct
// patients); otherwise it counts supporting rows.
type AggregationRule struct {
	MinCount int
	By       string
	Pos      Pos
}

// AnonMethod enumerates per-attribute anonymization methods (§5 iii).
type AnonMethod int

// Anonymization methods.
const (
	AnonSuppress   AnonMethod = iota // replace with NULL
	AnonPseudonym                    // keyed pseudonym (HMAC)
	AnonGeneralize                   // climb a generalization hierarchy
	AnonPerturb                      // numeric noise, aggregate-preserving
)

var anonNames = map[AnonMethod]string{
	AnonSuppress: "suppress", AnonPseudonym: "pseudonym",
	AnonGeneralize: "generalize", AnonPerturb: "perturb",
}

// String returns the DSL spelling of the method.
func (m AnonMethod) String() string { return anonNames[m] }

// ParseAnonMethod parses a DSL anonymization method name.
func ParseAnonMethod(s string) (AnonMethod, error) {
	for m, n := range anonNames {
		if strings.EqualFold(s, n) {
			return m, nil
		}
	}
	return 0, fmt.Errorf("policy: unknown anonymization method %q", s)
}

// AnonymizeRule requires an attribute to be anonymized before release.
// Param is method-specific: generalization level for AnonGeneralize,
// noise magnitude (percent) for AnonPerturb.
type AnonymizeRule struct {
	Attribute string
	Method    AnonMethod
	Param     int
	Pos       Pos
}

// ReleaseRule imposes a table-level anonymity requirement on data released
// by a source (§3, Fig. 2a): k-anonymity over the quasi-identifier set
// and optionally distinct l-diversity on a sensitive attribute.
type ReleaseRule struct {
	K         int
	L         int // 0 = no l-diversity requirement
	Quasi     []string
	Sensitive string
	Pos       Pos
}

// JoinRule permits or forbids joining the scoped data with another
// relation or source (§5 iv).
type JoinRule struct {
	Effect Effect
	Other  string
	Pos    Pos
}

// IntegrationRule permits or forbids using the scoped data to clean or
// resolve (entity-match) data belonging to another owner (§5 v).
type IntegrationRule struct {
	Effect      Effect
	Beneficiary string // owner name; "*" = any
	Pos         Pos
}

// RetentionRule bounds how long the data may be retained by the BI
// provider.
type RetentionRule struct {
	Days int
	Pos  Pos
}

// RowFilterRule is a VPD-style row restriction: only rows satisfying the
// condition may be released or shown.
type RowFilterRule struct {
	When relation.Expr
	Pos  Pos
}

// PLA is one privacy level agreement between a source owner and the BI
// provider.
type PLA struct {
	ID       string
	Owner    string
	Level    Level
	Scope    string // table / ETL step / meta-report / report identifier
	Purposes []string
	Pos      Pos // position of the "pla" keyword in the source document

	Access       []AccessRule
	Aggregations []AggregationRule
	Anonymize    []AnonymizeRule
	Release      []ReleaseRule
	Joins        []JoinRule
	Integrations []IntegrationRule
	Retention    *RetentionRule
	Filters      []RowFilterRule
}

// Atoms counts the individual requirement statements in the PLA — the
// elicitation-effort unit used by the Fig. 5 experiments.
func (p *PLA) Atoms() int {
	n := len(p.Access) + len(p.Aggregations) + len(p.Anonymize) +
		len(p.Release) + len(p.Joins) + len(p.Integrations) + len(p.Filters)
	if p.Retention != nil {
		n++
	}
	return n
}

// Validate checks internal consistency: positive thresholds, known
// methods, non-empty scope.
func (p *PLA) Validate() error {
	if p.ID == "" {
		return fmt.Errorf("policy: PLA without id")
	}
	if p.Scope == "" {
		return fmt.Errorf("policy %s: empty scope", p.ID)
	}
	for _, a := range p.Aggregations {
		if a.MinCount < 1 {
			return fmt.Errorf("policy %s: aggregation threshold must be >= 1, got %d", p.ID, a.MinCount)
		}
	}
	for _, r := range p.Release {
		if r.K < 2 {
			return fmt.Errorf("policy %s: k-anonymity requires k >= 2, got %d", p.ID, r.K)
		}
		if r.L < 0 || (r.L > 0 && r.Sensitive == "") {
			return fmt.Errorf("policy %s: l-diversity requires a sensitive attribute", p.ID)
		}
		if len(r.Quasi) == 0 {
			return fmt.Errorf("policy %s: release rule without quasi-identifiers", p.ID)
		}
	}
	for _, a := range p.Anonymize {
		if a.Attribute == "" {
			return fmt.Errorf("policy %s: anonymize rule without attribute", p.ID)
		}
		if a.Method == AnonGeneralize && a.Param < 1 {
			return fmt.Errorf("policy %s: generalize requires level >= 1", p.ID)
		}
	}
	if p.Retention != nil && p.Retention.Days < 1 {
		return fmt.Errorf("policy %s: retention must be >= 1 day", p.ID)
	}
	return nil
}

// AccessDecision summarizes attribute-level access under a PLA.
type AccessDecision struct {
	Effect Effect
	// Conditions collects the intensional conditions of every matching
	// allow rule; all must hold on the supporting source rows.
	Conditions []relation.Expr
	// Matched lists the rules that fired, for audit evidence.
	Matched []AccessRule
	// PLAs lists the ids of the agreements whose rules fired — on a deny,
	// the deciding PLA.
	PLAs []string
}

// DecideAttribute evaluates the PLA's access rules for one attribute/role/
// purpose. Deny rules dominate; with no matching rule the default is deny
// (closed-world: only elicited permissions release data).
func (p *PLA) DecideAttribute(attr, role, purpose string) AccessDecision {
	d := AccessDecision{Effect: Deny}
	anyAllow := false
	for _, r := range p.Access {
		if !r.Matches(attr, role, purpose) {
			continue
		}
		d.Matched = append(d.Matched, r)
		if r.Effect == Deny {
			return AccessDecision{Effect: Deny, Matched: []AccessRule{r}, PLAs: []string{p.ID}}
		}
		anyAllow = true
		if r.When != nil {
			d.Conditions = append(d.Conditions, r.When)
		}
	}
	if anyAllow {
		d.Effect = Allow
	}
	if len(d.Matched) > 0 {
		d.PLAs = []string{p.ID}
	}
	return d
}

// JoinAllowed reports whether joining with the named relation is
// permitted. Default is deny when any join rule exists (eliciting one join
// permission closes the world); with no join rules at all, joins are
// unconstrained by this PLA.
func (p *PLA) JoinAllowed(other string) (bool, *JoinRule) {
	if len(p.Joins) == 0 {
		return true, nil
	}
	allowed := false
	for i := range p.Joins {
		r := &p.Joins[i]
		if strings.EqualFold(r.Other, other) || r.Other == "*" {
			if r.Effect == Deny {
				return false, r
			}
			allowed = true
			if strings.EqualFold(r.Other, other) {
				return true, r
			}
		}
	}
	if allowed {
		return true, nil
	}
	return false, nil
}

// IntegrationAllowed reports whether using the data to clean/resolve the
// named beneficiary owner's data is permitted. Semantics mirror
// JoinAllowed.
func (p *PLA) IntegrationAllowed(beneficiary string) (bool, *IntegrationRule) {
	if len(p.Integrations) == 0 {
		return true, nil
	}
	allowed := false
	for i := range p.Integrations {
		r := &p.Integrations[i]
		if strings.EqualFold(r.Beneficiary, beneficiary) || r.Beneficiary == "*" {
			if r.Effect == Deny {
				return false, r
			}
			allowed = true
			if strings.EqualFold(r.Beneficiary, beneficiary) {
				return true, r
			}
		}
	}
	if allowed {
		return true, nil
	}
	return false, nil
}

// MinAggregation returns the strongest aggregation threshold for the given
// distinct-count attribute ("" matches row-count rules), or 0 when none
// applies.
func (p *PLA) MinAggregation(by string) int {
	best := 0
	for _, a := range p.Aggregations {
		if (by == "" && a.By == "") || strings.EqualFold(a.By, by) || by == "*" {
			if a.MinCount > best {
				best = a.MinCount
			}
		}
	}
	return best
}

func containsFold(list []string, s string) bool {
	for _, v := range list {
		if strings.EqualFold(v, s) {
			return true
		}
	}
	return false
}
