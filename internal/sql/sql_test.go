package sql

import (
	"strings"
	"testing"

	"plabi/internal/relation"
)

func testCatalog() *Catalog {
	c := NewCatalog()
	p := relation.NewBase("prescriptions", relation.NewSchema(
		relation.Col("patient", relation.TString),
		relation.Col("doctor", relation.TString),
		relation.Col("drug", relation.TString),
		relation.Col("disease", relation.TString),
		relation.Col("date", relation.TDate),
	))
	p.AppendVals(relation.Str("Alice"), relation.Str("Luis"), relation.Str("DH"), relation.Str("HIV"), relation.DateYMD(2007, 2, 12))
	p.AppendVals(relation.Str("Chris"), relation.Null(), relation.Str("DV"), relation.Str("HIV"), relation.DateYMD(2007, 3, 10))
	p.AppendVals(relation.Str("Bob"), relation.Str("Anne"), relation.Str("DR"), relation.Str("asthma"), relation.DateYMD(2007, 8, 10))
	p.AppendVals(relation.Str("Math"), relation.Str("Mark"), relation.Str("DM"), relation.Str("diabetes"), relation.DateYMD(2007, 10, 15))
	p.AppendVals(relation.Str("Alice"), relation.Str("Luis"), relation.Str("DR"), relation.Str("asthma"), relation.DateYMD(2008, 4, 15))
	c.Register(p)

	d := relation.NewBase("drugcost", relation.NewSchema(
		relation.Col("drug", relation.TString),
		relation.Col("cost", relation.TInt),
	))
	d.AppendVals(relation.Str("DD"), relation.Int(50))
	d.AppendVals(relation.Str("DM"), relation.Int(10))
	d.AppendVals(relation.Str("DH"), relation.Int(60))
	d.AppendVals(relation.Str("DV"), relation.Int(30))
	d.AppendVals(relation.Str("DR"), relation.Int(10))
	c.Register(d)
	return c
}

func mustQuery(t *testing.T, c *Catalog, q string) *relation.Table {
	t.Helper()
	res, err := c.Query(q)
	if err != nil {
		t.Fatalf("Query(%q): %v", q, err)
	}
	return res
}

func TestSelectStar(t *testing.T) {
	c := testCatalog()
	res := mustQuery(t, c, "SELECT * FROM prescriptions")
	if res.NumRows() != 5 || res.Schema.Len() != 5 {
		t.Errorf("rows=%d cols=%d", res.NumRows(), res.Schema.Len())
	}
}

func TestSelectWhere(t *testing.T) {
	c := testCatalog()
	res := mustQuery(t, c, "SELECT patient FROM prescriptions WHERE disease = 'HIV'")
	if res.NumRows() != 2 {
		t.Fatalf("rows = %d", res.NumRows())
	}
	if res.Get(0, "patient").S != "Alice" || res.Get(1, "patient").S != "Chris" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestSelectExpressions(t *testing.T) {
	c := testCatalog()
	res := mustQuery(t, c, "SELECT drug, cost * 2 AS dbl FROM drugcost WHERE cost >= 30 ORDER BY dbl DESC")
	if res.NumRows() != 3 {
		t.Fatalf("rows = %d", res.NumRows())
	}
	if res.Get(0, "dbl").I != 120 || res.Get(0, "drug").S != "DH" {
		t.Errorf("first = %v", res.Rows[0])
	}
}

func TestJoinSQL(t *testing.T) {
	c := testCatalog()
	res := mustQuery(t, c, `SELECT p.patient, p.drug, d.cost
		FROM prescriptions p JOIN drugcost d ON p.drug = d.drug
		WHERE p.disease = 'HIV' ORDER BY patient`)
	if res.NumRows() != 2 {
		t.Fatalf("rows = %d", res.NumRows())
	}
	if res.Get(0, "cost").I != 60 || res.Get(1, "cost").I != 30 {
		t.Errorf("costs = %v %v", res.Get(0, "cost"), res.Get(1, "cost"))
	}
}

func TestLeftJoinSQL(t *testing.T) {
	c := testCatalog()
	res := mustQuery(t, c, `SELECT d.drug, p.patient FROM drugcost d
		LEFT JOIN prescriptions p ON d.drug = p.drug ORDER BY drug`)
	foundDD := false
	for i := 0; i < res.NumRows(); i++ {
		if res.Get(i, "drug").S == "DD" {
			foundDD = true
			if !res.Get(i, "patient").IsNull() {
				t.Error("DD must have NULL patient")
			}
		}
	}
	if !foundDD {
		t.Error("DD row missing")
	}
}

func TestGroupBySQL(t *testing.T) {
	c := testCatalog()
	res := mustQuery(t, c, `SELECT drug, COUNT(*) AS consumption
		FROM prescriptions GROUP BY drug ORDER BY drug`)
	want := map[string]int64{"DH": 1, "DM": 1, "DR": 2, "DV": 1}
	if res.NumRows() != 4 {
		t.Fatalf("rows = %d", res.NumRows())
	}
	for i := 0; i < res.NumRows(); i++ {
		d := res.Get(i, "drug").S
		if res.Get(i, "consumption").I != want[d] {
			t.Errorf("%s = %v, want %d", d, res.Get(i, "consumption"), want[d])
		}
	}
}

func TestGroupByAggregatesSQL(t *testing.T) {
	c := testCatalog()
	res := mustQuery(t, c, `SELECT disease, COUNT(*) AS n, MIN(date) AS first, MAX(date) AS last
		FROM prescriptions GROUP BY disease ORDER BY disease`)
	if res.NumRows() != 3 {
		t.Fatalf("rows = %d\n%s", res.NumRows(), res)
	}
	// asthma group: base rows 2 and 4.
	for i := 0; i < res.NumRows(); i++ {
		if res.Get(i, "disease").S != "asthma" {
			continue
		}
		if res.Get(i, "n").I != 2 {
			t.Errorf("asthma = %v", res.Rows[i])
		}
		if res.Get(i, "first").String() != "2007-08-10" || res.Get(i, "last").String() != "2008-04-15" {
			t.Errorf("dates = %v %v", res.Get(i, "first"), res.Get(i, "last"))
		}
	}
}

func TestImplicitSingleGroup(t *testing.T) {
	c := testCatalog()
	res := mustQuery(t, c, "SELECT COUNT(*) AS n, SUM(cost) AS total FROM drugcost")
	if res.NumRows() != 1 || res.Get(0, "n").I != 5 || res.Get(0, "total").I != 160 {
		t.Errorf("res = %v", res.Rows)
	}
}

func TestCountDistinct(t *testing.T) {
	c := testCatalog()
	res := mustQuery(t, c, "SELECT COUNT(DISTINCT patient) AS n FROM prescriptions")
	if res.Get(0, "n").I != 4 {
		t.Errorf("n = %v", res.Get(0, "n"))
	}
}

func TestHaving(t *testing.T) {
	c := testCatalog()
	res := mustQuery(t, c, `SELECT disease, COUNT(*) AS n FROM prescriptions
		GROUP BY disease HAVING n >= 2 ORDER BY disease`)
	if res.NumRows() != 2 {
		t.Fatalf("rows = %d", res.NumRows())
	}
	// Byte-wise string order: "HIV" sorts before "asthma".
	if res.Get(0, "disease").S != "HIV" || res.Get(1, "disease").S != "asthma" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestGroupByExpression(t *testing.T) {
	c := testCatalog()
	res := mustQuery(t, c, `SELECT YEAR(date) AS yr, COUNT(*) AS n
		FROM prescriptions GROUP BY YEAR(date) ORDER BY yr`)
	if res.NumRows() != 2 {
		t.Fatalf("rows = %d\n%s", res.NumRows(), res)
	}
	if res.Get(0, "yr").I != 2007 || res.Get(0, "n").I != 4 {
		t.Errorf("2007 = %v", res.Rows[0])
	}
	if res.Get(1, "yr").I != 2008 || res.Get(1, "n").I != 1 {
		t.Errorf("2008 = %v", res.Rows[1])
	}
}

func TestDistinctSQL(t *testing.T) {
	c := testCatalog()
	res := mustQuery(t, c, "SELECT DISTINCT patient FROM prescriptions ORDER BY patient")
	if res.NumRows() != 4 {
		t.Errorf("rows = %d", res.NumRows())
	}
}

func TestLimitSQL(t *testing.T) {
	c := testCatalog()
	res := mustQuery(t, c, "SELECT * FROM drugcost ORDER BY cost DESC LIMIT 2")
	if res.NumRows() != 2 || res.Get(0, "drug").S != "DH" {
		t.Errorf("res = %v", res.Rows)
	}
}

func TestInBetweenLike(t *testing.T) {
	c := testCatalog()
	res := mustQuery(t, c, "SELECT patient FROM prescriptions WHERE drug IN ('DH', 'DV')")
	if res.NumRows() != 2 {
		t.Errorf("IN rows = %d", res.NumRows())
	}
	res = mustQuery(t, c, "SELECT drug FROM drugcost WHERE cost BETWEEN 10 AND 30 ORDER BY drug")
	if res.NumRows() != 3 {
		t.Errorf("BETWEEN rows = %d", res.NumRows())
	}
	res = mustQuery(t, c, "SELECT patient FROM prescriptions WHERE patient LIKE 'A%'")
	if res.NumRows() != 2 {
		t.Errorf("LIKE rows = %d", res.NumRows())
	}
	res = mustQuery(t, c, "SELECT patient FROM prescriptions WHERE doctor IS NULL")
	if res.NumRows() != 1 || res.Get(0, "patient").S != "Chris" {
		t.Errorf("IS NULL rows = %v", res.Rows)
	}
}

func TestDateLiteral(t *testing.T) {
	c := testCatalog()
	res := mustQuery(t, c, "SELECT patient FROM prescriptions WHERE date >= DATE '2008-01-01'")
	if res.NumRows() != 1 || res.Get(0, "patient").S != "Alice" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestCreateViewAndQuery(t *testing.T) {
	c := testCatalog()
	if _, err := c.Run(`CREATE VIEW hiv_patients AS SELECT patient, drug FROM prescriptions WHERE disease = 'HIV'`); err != nil {
		t.Fatal(err)
	}
	res := mustQuery(t, c, "SELECT * FROM hiv_patients ORDER BY patient")
	if res.NumRows() != 2 || res.Schema.Len() != 2 {
		t.Errorf("res = %v", res.Rows)
	}
	// Lineage traces through the view to the base table.
	if !res.RowLineage(0).Contains(relation.RowRef{Table: "prescriptions", Row: 0}) {
		t.Errorf("lineage = %v", res.RowLineage(0))
	}
}

func TestViewOnView(t *testing.T) {
	c := testCatalog()
	if _, err := c.Run(`CREATE VIEW v1 AS SELECT patient, disease FROM prescriptions`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(`CREATE VIEW v2 AS SELECT patient FROM v1 WHERE disease = 'asthma'`); err != nil {
		t.Fatal(err)
	}
	res := mustQuery(t, c, "SELECT * FROM v2 ORDER BY patient")
	if res.NumRows() != 2 {
		t.Errorf("rows = %d", res.NumRows())
	}
}

func TestViewCycleDetected(t *testing.T) {
	c := testCatalog()
	sel, err := ParseSelect("SELECT * FROM v")
	if err != nil {
		t.Fatal(err)
	}
	c.RegisterView("v", sel)
	if _, err := c.Query("SELECT * FROM v"); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("expected cycle error, got %v", err)
	}
}

func TestUnknownTableError(t *testing.T) {
	c := testCatalog()
	if _, err := c.Query("SELECT * FROM nope"); err == nil {
		t.Error("expected error")
	}
}

func TestNonGroupedColumnError(t *testing.T) {
	c := testCatalog()
	if _, err := c.Query("SELECT patient, COUNT(*) FROM prescriptions GROUP BY disease"); err == nil {
		t.Error("expected non-grouped column error")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t GROUP",
		"SELECT * FROM t LIMIT x",
		"SELECT * FROM t extra garbage",
		"SELECT SUM(*) FROM t",
		"CREATE VIEW v",
		"SELECT 'unterminated FROM t",
		"SELECT a FROM t WHERE a = SUM(b)",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) should fail", q)
		}
	}
}

func TestRoundTripString(t *testing.T) {
	queries := []string{
		"SELECT patient FROM prescriptions WHERE disease = 'HIV'",
		"SELECT drug, COUNT(*) AS n FROM prescriptions GROUP BY drug HAVING n >= 2 ORDER BY n DESC LIMIT 3",
		"SELECT p.patient FROM prescriptions AS p JOIN drugcost AS d ON p.drug = d.drug",
		"SELECT DISTINCT patient FROM prescriptions",
	}
	for _, q := range queries {
		sel, err := ParseSelect(q)
		if err != nil {
			t.Fatalf("Parse(%q): %v", q, err)
		}
		again, err := ParseSelect(sel.String())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", sel.String(), err)
		}
		if sel.String() != again.String() {
			t.Errorf("round trip: %q -> %q", sel.String(), again.String())
		}
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	c := testCatalog()
	res := mustQuery(t, c, "select patient from prescriptions where disease = 'HIV' order by patient")
	if res.NumRows() != 2 {
		t.Errorf("rows = %d", res.NumRows())
	}
}

func TestQuotedIdent(t *testing.T) {
	c := testCatalog()
	res := mustQuery(t, c, `SELECT "patient" FROM prescriptions WHERE disease = 'HIV'`)
	if res.NumRows() != 2 {
		t.Errorf("rows = %d", res.NumRows())
	}
}

func TestCommentsSkipped(t *testing.T) {
	c := testCatalog()
	res := mustQuery(t, c, "SELECT patient -- take the name\nFROM prescriptions -- base\nWHERE disease = 'HIV'")
	if res.NumRows() != 2 {
		t.Errorf("rows = %d", res.NumRows())
	}
}
