package policy

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"plabi/internal/sql"
)

// The PLA DSL is the textual form in which requirements elicited with the
// source owners are recorded. Example:
//
//	pla "hospital-prescriptions" {
//	    owner "hospital";
//	    level source;
//	    scope "prescriptions";
//	    purpose "reimbursement", "quality";
//
//	    allow attribute patient to roles analyst when disease <> 'HIV';
//	    deny attribute disease;
//	    aggregate min 5 by patient;
//	    anonymize attribute patient using pseudonym;
//	    anonymize attribute date using generalize level 2;
//	    release kanonymity 5 quasi age, zip ldiversity 2 on disease;
//	    forbid join with familydoctor;
//	    allow join with drugcost;
//	    forbid integration for municipality;
//	    retain 365 days;
//	    filter when disease <> 'HIV';
//	}
//
// "forbid" is an alias for "deny". Conditions after "when" use the SQL
// expression syntax and refer to source attributes.

type dslScanner struct {
	src  string
	pos  int
	file string // optional source name for positions and errors

	lineStarts []int // lazily built byte offsets of line beginnings
}

// posAt converts a byte offset into a file:line:col position.
func (s *dslScanner) posAt(off int) Pos {
	if s.lineStarts == nil {
		s.lineStarts = []int{0}
		for i := 0; i < len(s.src); i++ {
			if s.src[i] == '\n' {
				s.lineStarts = append(s.lineStarts, i+1)
			}
		}
	}
	line := sort.Search(len(s.lineStarts), func(i int) bool { return s.lineStarts[i] > off })
	return Pos{File: s.file, Line: line, Col: off - s.lineStarts[line-1] + 1}
}

type dslTok struct {
	kind byte // 'i' ident, 's' string, 'n' number, 'p' punct, 'e' EOF
	text string
	pos  int
}

func (s *dslScanner) skip() {
	for s.pos < len(s.src) {
		c := s.src[s.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			s.pos++
			continue
		}
		if c == '#' || (c == '-' && s.pos+1 < len(s.src) && s.src[s.pos+1] == '-') {
			for s.pos < len(s.src) && s.src[s.pos] != '\n' {
				s.pos++
			}
			continue
		}
		return
	}
}

func (s *dslScanner) next() (dslTok, error) {
	s.skip()
	if s.pos >= len(s.src) {
		return dslTok{kind: 'e', pos: s.pos}, nil
	}
	start := s.pos
	c := s.src[s.pos]
	switch {
	case c == '"':
		s.pos++
		var b strings.Builder
		for s.pos < len(s.src) && s.src[s.pos] != '"' {
			b.WriteByte(s.src[s.pos])
			s.pos++
		}
		if s.pos >= len(s.src) {
			return dslTok{}, fmt.Errorf("policy: unterminated string at %d", start)
		}
		s.pos++
		return dslTok{kind: 's', text: b.String(), pos: start}, nil
	case c >= '0' && c <= '9':
		for s.pos < len(s.src) && s.src[s.pos] >= '0' && s.src[s.pos] <= '9' {
			s.pos++
		}
		return dslTok{kind: 'n', text: s.src[start:s.pos], pos: start}, nil
	case isDSLIdent(c):
		for s.pos < len(s.src) && (isDSLIdent(s.src[s.pos]) || s.src[s.pos] >= '0' && s.src[s.pos] <= '9' || s.src[s.pos] == '.' || s.src[s.pos] == '-') {
			s.pos++
		}
		return dslTok{kind: 'i', text: s.src[start:s.pos], pos: start}, nil
	case c == '{' || c == '}' || c == ';' || c == ',' || c == '*':
		s.pos++
		return dslTok{kind: 'p', text: string(c), pos: start}, nil
	default:
		return dslTok{}, fmt.Errorf("policy: unexpected character %q at %d", c, start)
	}
}

// rawUntilSemicolon captures the raw source text up to (not including) the
// next top-level ';', respecting single-quoted SQL strings.
func (s *dslScanner) rawUntilSemicolon() (string, error) {
	s.skip()
	start := s.pos
	inStr := false
	for s.pos < len(s.src) {
		c := s.src[s.pos]
		if inStr {
			if c == '\'' {
				inStr = false
			}
			s.pos++
			continue
		}
		if c == '\'' {
			inStr = true
			s.pos++
			continue
		}
		if c == ';' {
			return strings.TrimSpace(s.src[start:s.pos]), nil
		}
		s.pos++
	}
	return "", fmt.Errorf("policy: unterminated condition at %d", start)
}

func isDSLIdent(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

type dslParser struct {
	sc  *dslScanner
	tok dslTok
}

func (p *dslParser) advance() error {
	t, err := p.sc.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *dslParser) errf(format string, args ...any) error {
	return fmt.Errorf("policy: %s (at %s, token %q)",
		fmt.Sprintf(format, args...), p.sc.posAt(p.tok.pos), p.tok.text)
}

// posHere returns the position of the current token.
func (p *dslParser) posHere() Pos { return p.sc.posAt(p.tok.pos) }

func (p *dslParser) isKw(kw string) bool {
	return p.tok.kind == 'i' && strings.EqualFold(p.tok.text, kw)
}

func (p *dslParser) acceptKw(kw string) (bool, error) {
	if p.isKw(kw) {
		return true, p.advance()
	}
	return false, nil
}

func (p *dslParser) expectKw(kw string) error {
	ok, err := p.acceptKw(kw)
	if err != nil {
		return err
	}
	if !ok {
		return p.errf("expected %q", kw)
	}
	return nil
}

func (p *dslParser) expectPunct(ch string) error {
	if p.tok.kind == 'p' && p.tok.text == ch {
		return p.advance()
	}
	return p.errf("expected %q", ch)
}

// name accepts an identifier, a quoted string, or "*".
func (p *dslParser) name() (string, error) {
	switch {
	case p.tok.kind == 'i' || p.tok.kind == 's':
		n := p.tok.text
		return n, p.advance()
	case p.tok.kind == 'p' && p.tok.text == "*":
		return "*", p.advance()
	default:
		return "", p.errf("expected name")
	}
}

func (p *dslParser) nameList() ([]string, error) {
	var out []string
	for {
		n, err := p.name()
		if err != nil {
			return nil, err
		}
		out = append(out, n)
		if p.tok.kind == 'p' && p.tok.text == "," {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		return out, nil
	}
}

func (p *dslParser) number() (int, error) {
	if p.tok.kind != 'n' {
		return 0, p.errf("expected number")
	}
	n, err := strconv.Atoi(p.tok.text)
	if err != nil {
		return 0, p.errf("bad number %q", p.tok.text)
	}
	return n, p.advance()
}

// ParseFile parses a DSL document containing any number of PLA blocks.
func ParseFile(src string) ([]*PLA, error) {
	return ParseFileNamed("", src)
}

// ParseFileNamed parses a DSL document, recording filename in the Pos of
// every PLA and rule (and in parse-error messages) so diagnostics point
// at the offending source line.
func ParseFileNamed(filename, src string) ([]*PLA, error) {
	p := &dslParser{sc: &dslScanner{src: src, file: filename}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	var out []*PLA
	for p.tok.kind != 'e' {
		pla, err := p.parsePLA()
		if err != nil {
			return nil, err
		}
		if err := pla.Validate(); err != nil {
			return nil, err
		}
		out = append(out, pla)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("policy: no PLA blocks found")
	}
	return out, nil
}

// ParseOne parses exactly one PLA block.
func ParseOne(src string) (*PLA, error) {
	plas, err := ParseFile(src)
	if err != nil {
		return nil, err
	}
	if len(plas) != 1 {
		return nil, fmt.Errorf("policy: expected one PLA, found %d", len(plas))
	}
	return plas[0], nil
}

func (p *dslParser) parsePLA() (*PLA, error) {
	pos := p.posHere()
	if err := p.expectKw("pla"); err != nil {
		return nil, err
	}
	if p.tok.kind != 's' && p.tok.kind != 'i' {
		return nil, p.errf("expected PLA id")
	}
	pla := &PLA{ID: p.tok.text, Level: LevelReport, Pos: pos}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	for {
		if p.tok.kind == 'p' && p.tok.text == "}" {
			return pla, p.advance()
		}
		if p.tok.kind == 'e' {
			return nil, p.errf("unterminated PLA block %q", pla.ID)
		}
		if err := p.parseClause(pla); err != nil {
			return nil, err
		}
	}
}

func (p *dslParser) parseClause(pla *PLA) error {
	pos := p.posHere()
	switch {
	case p.isKw("owner"):
		if err := p.advance(); err != nil {
			return err
		}
		n, err := p.name()
		if err != nil {
			return err
		}
		pla.Owner = n
	case p.isKw("level"):
		if err := p.advance(); err != nil {
			return err
		}
		n, err := p.name()
		if err != nil {
			return err
		}
		lvl, err := ParseLevel(n)
		if err != nil {
			return err
		}
		pla.Level = lvl
	case p.isKw("scope"):
		if err := p.advance(); err != nil {
			return err
		}
		n, err := p.name()
		if err != nil {
			return err
		}
		pla.Scope = n
	case p.isKw("purpose"):
		if err := p.advance(); err != nil {
			return err
		}
		list, err := p.nameList()
		if err != nil {
			return err
		}
		pla.Purposes = append(pla.Purposes, list...)
	case p.isKw("allow") || p.isKw("deny") || p.isKw("forbid"):
		if err := p.parseEffectClause(pla); err != nil {
			return err
		}
		return nil // effect clauses consume their own ';'
	case p.isKw("aggregate"):
		if err := p.advance(); err != nil {
			return err
		}
		if err := p.expectKw("min"); err != nil {
			return err
		}
		n, err := p.number()
		if err != nil {
			return err
		}
		rule := AggregationRule{MinCount: n, Pos: pos}
		if ok, err := p.acceptKw("by"); err != nil {
			return err
		} else if ok {
			by, err := p.name()
			if err != nil {
				return err
			}
			rule.By = by
		}
		pla.Aggregations = append(pla.Aggregations, rule)
	case p.isKw("anonymize"):
		if err := p.advance(); err != nil {
			return err
		}
		if err := p.expectKw("attribute"); err != nil {
			return err
		}
		attr, err := p.name()
		if err != nil {
			return err
		}
		if err := p.expectKw("using"); err != nil {
			return err
		}
		mname, err := p.name()
		if err != nil {
			return err
		}
		method, err := ParseAnonMethod(mname)
		if err != nil {
			return err
		}
		rule := AnonymizeRule{Attribute: attr, Method: method, Pos: pos}
		if ok, err := p.acceptKw("level"); err != nil {
			return err
		} else if ok {
			rule.Param, err = p.number()
			if err != nil {
				return err
			}
		} else if ok, err := p.acceptKw("noise"); err != nil {
			return err
		} else if ok {
			rule.Param, err = p.number()
			if err != nil {
				return err
			}
		}
		pla.Anonymize = append(pla.Anonymize, rule)
	case p.isKw("release"):
		if err := p.advance(); err != nil {
			return err
		}
		if err := p.expectKw("kanonymity"); err != nil {
			return err
		}
		k, err := p.number()
		if err != nil {
			return err
		}
		if err := p.expectKw("quasi"); err != nil {
			return err
		}
		quasi, err := p.nameList()
		if err != nil {
			return err
		}
		rule := ReleaseRule{K: k, Quasi: quasi, Pos: pos}
		if ok, err := p.acceptKw("ldiversity"); err != nil {
			return err
		} else if ok {
			rule.L, err = p.number()
			if err != nil {
				return err
			}
			if err := p.expectKw("on"); err != nil {
				return err
			}
			rule.Sensitive, err = p.name()
			if err != nil {
				return err
			}
		}
		pla.Release = append(pla.Release, rule)
	case p.isKw("retain"):
		if err := p.advance(); err != nil {
			return err
		}
		days, err := p.number()
		if err != nil {
			return err
		}
		if err := p.expectKw("days"); err != nil {
			return err
		}
		pla.Retention = &RetentionRule{Days: days, Pos: pos}
	case p.isKw("filter"):
		if err := p.advance(); err != nil {
			return err
		}
		if !p.isKw("when") {
			return p.errf("expected 'when' after 'filter'")
		}
		// Capture raw condition text; the current token is "when".
		raw, err := p.sc.rawUntilSemicolon()
		if err != nil {
			return err
		}
		expr, err := sql.ParseExpr(raw)
		if err != nil {
			return fmt.Errorf("policy: bad filter condition %q: %w", raw, err)
		}
		pla.Filters = append(pla.Filters, RowFilterRule{When: expr, Pos: pos})
		if err := p.advance(); err != nil { // move onto ';'
			return err
		}
	default:
		return p.errf("unknown clause")
	}
	return p.expectPunct(";")
}

// parseEffectClause handles allow/deny/forbid for attributes, joins and
// integrations, consuming the trailing semicolon.
func (p *dslParser) parseEffectClause(pla *PLA) error {
	pos := p.posHere()
	effect := Allow
	if p.isKw("deny") || p.isKw("forbid") {
		effect = Deny
	}
	if err := p.advance(); err != nil {
		return err
	}
	switch {
	case p.isKw("attribute"):
		if err := p.advance(); err != nil {
			return err
		}
		attr, err := p.name()
		if err != nil {
			return err
		}
		rule := AccessRule{Effect: effect, Attribute: attr, Pos: pos}
		if ok, err := p.acceptKw("to"); err != nil {
			return err
		} else if ok {
			if err := p.expectKw("roles"); err != nil {
				return err
			}
			rule.Roles, err = p.nameList()
			if err != nil {
				return err
			}
		}
		if ok, err := p.acceptKw("purpose"); err != nil {
			return err
		} else if ok {
			rule.Purposes, err = p.nameList()
			if err != nil {
				return err
			}
		}
		if p.isKw("when") {
			raw, err := p.sc.rawUntilSemicolon()
			if err != nil {
				return err
			}
			rule.When, err = sql.ParseExpr(raw)
			if err != nil {
				return fmt.Errorf("policy: bad access condition %q: %w", raw, err)
			}
			if err := p.advance(); err != nil {
				return err
			}
		}
		pla.Access = append(pla.Access, rule)
	case p.isKw("join"):
		if err := p.advance(); err != nil {
			return err
		}
		if err := p.expectKw("with"); err != nil {
			return err
		}
		other, err := p.name()
		if err != nil {
			return err
		}
		pla.Joins = append(pla.Joins, JoinRule{Effect: effect, Other: other, Pos: pos})
	case p.isKw("integration"):
		if err := p.advance(); err != nil {
			return err
		}
		if err := p.expectKw("for"); err != nil {
			return err
		}
		b, err := p.name()
		if err != nil {
			return err
		}
		pla.Integrations = append(pla.Integrations, IntegrationRule{Effect: effect, Beneficiary: b, Pos: pos})
	default:
		return p.errf("expected 'attribute', 'join' or 'integration' after effect")
	}
	return p.expectPunct(";")
}
