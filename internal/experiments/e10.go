package experiments

import (
	"fmt"

	"plabi/internal/elicit"
	"plabi/internal/metareport"
	"plabi/internal/policy"
)

// E10Granularity ablates the §5 design knob: how many meta-reports to
// define, and how close they sit to the warehouse (one maximal wide view)
// or to the reports (many narrow views). Narrow metas are easier to
// discuss one by one but cover less, so more evolution events escape the
// approved scope — the continuum of Fig. 5 reappears *inside* the
// meta-report level.
func E10Granularity() (*Result, error) {
	res := &Result{}
	res.addf("%-10s %-7s %-11s %-8s %-10s %s",
		"max-width", "metas", "avg-width", "ease", "stability", "re-elicits/200")
	type row struct {
		width     int
		stability float64
		ease      float64
	}
	var rows []row
	for _, maxWidth := range []int{2, 4, 6, 0} {
		s, err := elicit.BuildHealthcareScenario(42, 25)
		if err != nil {
			return nil, err
		}
		s.MetaOpts = metareport.Options{MaxWidth: maxWidth}
		if err := s.Rederive(); err != nil {
			return nil, err
		}
		costs, err := elicit.MeasureCosts(s)
		if err != nil {
			return nil, err
		}
		stab, err := elicit.SimulateEvolution(s, 200, nil)
		if err != nil {
			return nil, err
		}
		var mc elicit.LevelCost
		var ms elicit.StabilityResult
		for i, c := range costs {
			if c.Level == policy.LevelMetaReport {
				mc = c
				ms = stab[i]
			}
		}
		label := fmt.Sprintf("%d", maxWidth)
		if maxWidth == 0 {
			label = "unlimited"
		}
		res.addf("%-10s %-7d %-11.1f %-8.4f %-10.3f %d",
			label, mc.Artifacts, mc.VocabPerArtifact, mc.Ease, ms.Stability, ms.Reelicitations)
		rows = append(rows, row{width: maxWidth, stability: ms.Stability, ease: mc.Ease})
	}
	// Shape: the widest (unlimited) setting must be the most stable, and
	// the narrowest must be the easiest per artifact.
	last := rows[len(rows)-1]
	for _, r := range rows[:len(rows)-1] {
		if r.stability > last.stability+1e-9 {
			return nil, fmt.Errorf("E10: width %d more stable than unlimited", r.width)
		}
	}
	if rows[0].ease < last.ease {
		return nil, fmt.Errorf("E10: narrowest metas should be easiest per artifact")
	}
	res.addf("claim check: wider metas -> fewer, harder artifacts but higher stability; the Fig. 5 trade-off recurs inside the meta-report level -> PASS")
	return res, nil
}
