package policy

import (
	"fmt"
	"strings"
)

// String renders the PLA in DSL syntax; ParseOne(p.String()) round-trips.
func (p *PLA) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pla %q {\n", p.ID)
	if p.Owner != "" {
		fmt.Fprintf(&b, "    owner %q;\n", p.Owner)
	}
	fmt.Fprintf(&b, "    level %s;\n", p.Level)
	fmt.Fprintf(&b, "    scope %q;\n", p.Scope)
	if len(p.Purposes) > 0 {
		fmt.Fprintf(&b, "    purpose %s;\n", quoteList(p.Purposes))
	}
	for _, r := range p.Access {
		fmt.Fprintf(&b, "    %s attribute %s", r.Effect, dslName(r.Attribute))
		if len(r.Roles) > 0 {
			fmt.Fprintf(&b, " to roles %s", quoteList(r.Roles))
		}
		if len(r.Purposes) > 0 {
			fmt.Fprintf(&b, " purpose %s", quoteList(r.Purposes))
		}
		if r.When != nil {
			fmt.Fprintf(&b, " when %s", r.When)
		}
		b.WriteString(";\n")
	}
	for _, r := range p.Aggregations {
		fmt.Fprintf(&b, "    aggregate min %d", r.MinCount)
		if r.By != "" {
			fmt.Fprintf(&b, " by %s", dslName(r.By))
		}
		b.WriteString(";\n")
	}
	for _, r := range p.Anonymize {
		fmt.Fprintf(&b, "    anonymize attribute %s using %s", dslName(r.Attribute), r.Method)
		switch r.Method {
		case AnonGeneralize:
			fmt.Fprintf(&b, " level %d", r.Param)
		case AnonPerturb:
			if r.Param > 0 {
				fmt.Fprintf(&b, " noise %d", r.Param)
			}
		}
		b.WriteString(";\n")
	}
	for _, r := range p.Release {
		fmt.Fprintf(&b, "    release kanonymity %d quasi %s", r.K, nameList(r.Quasi))
		if r.L > 0 {
			fmt.Fprintf(&b, " ldiversity %d on %s", r.L, dslName(r.Sensitive))
		}
		b.WriteString(";\n")
	}
	for _, r := range p.Joins {
		eff := "allow"
		if r.Effect == Deny {
			eff = "forbid"
		}
		fmt.Fprintf(&b, "    %s join with %s;\n", eff, dslName(r.Other))
	}
	for _, r := range p.Integrations {
		eff := "allow"
		if r.Effect == Deny {
			eff = "forbid"
		}
		fmt.Fprintf(&b, "    %s integration for %s;\n", eff, dslName(r.Beneficiary))
	}
	if p.Retention != nil {
		fmt.Fprintf(&b, "    retain %d days;\n", p.Retention.Days)
	}
	for _, f := range p.Filters {
		fmt.Fprintf(&b, "    filter when %s;\n", f.When)
	}
	b.WriteString("}\n")
	return b.String()
}

// dslName renders a name, quoting when it is not a bare identifier.
func dslName(s string) string {
	if s == "*" {
		return "*"
	}
	bare := len(s) > 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if isDSLIdent(c) || (i > 0 && (c >= '0' && c <= '9' || c == '.' || c == '-')) {
			continue
		}
		bare = false
		break
	}
	// Avoid bare names colliding with clause keywords.
	switch strings.ToLower(s) {
	case "when", "to", "roles", "purpose", "by", "using", "level", "noise",
		"quasi", "ldiversity", "on", "days", "with", "for", "min":
		bare = false
	}
	if bare {
		return s
	}
	return fmt.Sprintf("%q", s)
}

func quoteList(list []string) string {
	parts := make([]string, len(list))
	for i, s := range list {
		parts[i] = fmt.Sprintf("%q", s)
	}
	return strings.Join(parts, ", ")
}

func nameList(list []string) string {
	parts := make([]string, len(list))
	for i, s := range list {
		parts[i] = dslName(s)
	}
	return strings.Join(parts, ", ")
}
