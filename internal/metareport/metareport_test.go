package metareport

import (
	"strings"
	"testing"

	"plabi/internal/policy"
	"plabi/internal/provenance"
	"plabi/internal/relation"
	"plabi/internal/report"
	"plabi/internal/sql"
	"plabi/internal/workload"
)

func testCatalog() (*sql.Catalog, *provenance.Tracer) {
	cat := sql.NewCatalog()
	tr := provenance.NewTracer()
	for _, tb := range []*relation.Table{
		workload.Fig4Prescriptions(1),
		workload.DrugCostFixture(),
		workload.FamilyDoctorFixture(),
	} {
		cat.Register(tb)
		tr.RegisterBase(tb)
	}
	return cat, tr
}

func portfolio() []*report.Definition {
	return []*report.Definition{
		{ID: "drug-consumption",
			Query: "SELECT drug, COUNT(*) AS consumption FROM prescriptions GROUP BY drug"},
		{ID: "disease-by-year",
			Query: "SELECT disease, YEAR(date) AS yr, COUNT(*) AS n FROM prescriptions GROUP BY disease, YEAR(date)"},
		{ID: "drug-spend",
			Query: "SELECT p.drug, SUM(c.cost) AS spend FROM prescriptions p JOIN drugcost c ON p.drug = c.drug GROUP BY p.drug"},
		{ID: "asthma-patients",
			Query: "SELECT patient, date FROM prescriptions WHERE disease = 'asthma'"},
	}
}

func TestDeriveClustersByFootprint(t *testing.T) {
	cat, _ := testCatalog()
	metas, assign, err := Derive(cat, portfolio())
	if err != nil {
		t.Fatal(err)
	}
	// One cluster for prescriptions⋈drugcost (absorbs the single-table
	// prescriptions reports) — minimality in action.
	if len(metas) != 1 {
		for _, m := range metas {
			t.Logf("meta %s: %s", m.ID, m.Query)
		}
		t.Fatalf("metas = %d, want 1", len(metas))
	}
	if len(assign) != 4 {
		t.Errorf("assignments = %v", assign)
	}
	for id, mid := range assign {
		if mid != metas[0].ID {
			t.Errorf("report %s assigned to %s", id, mid)
		}
	}
	// The meta-report itself must be executable.
	res, err := cat.Query(metas[0].Query)
	if err != nil {
		t.Fatalf("meta query %q: %v", metas[0].Query, err)
	}
	if res.NumRows() == 0 {
		t.Error("meta-report is empty")
	}
	// The meta-report includes the disease column even though only used
	// in a filter (PLA-only column, §5).
	if !res.Schema.HasColumn("disease") {
		t.Errorf("schema = %s", res.Schema)
	}
}

func TestDeriveSeparateFootprints(t *testing.T) {
	cat, _ := testCatalog()
	defs := []*report.Definition{
		{ID: "a", Query: "SELECT drug FROM prescriptions"},
		{ID: "b", Query: "SELECT patient FROM familydoctor"},
	}
	metas, assign, err := Derive(cat, defs)
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) != 2 {
		t.Fatalf("metas = %d", len(metas))
	}
	if assign["a"] == assign["b"] {
		t.Error("disjoint footprints must get separate meta-reports")
	}
}

func TestIsDerivable(t *testing.T) {
	cat, _ := testCatalog()
	metas, _, err := Derive(cat, portfolio())
	if err != nil {
		t.Fatal(err)
	}
	meta := metas[0]

	// Every portfolio report is derivable from its meta.
	for _, d := range portfolio() {
		c, err := IsDerivable(cat, d, meta)
		if err != nil {
			t.Fatal(err)
		}
		if !c.Derivable {
			t.Errorf("report %s not derivable: %v", d.ID, c.Reasons)
		}
	}

	// A NEW report over covered columns is derivable without
	// re-elicitation — the paper's stability argument.
	newRep := &report.Definition{ID: "new",
		Query: "SELECT drug, COUNT(DISTINCT patient) AS patients FROM prescriptions WHERE disease <> 'HIV' GROUP BY drug"}
	c, err := IsDerivable(cat, newRep, meta)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Derivable {
		t.Errorf("new report not derivable: %v", c.Reasons)
	}

	// A report touching an uncovered table is NOT derivable.
	outside := &report.Definition{ID: "outside",
		Query: "SELECT patient FROM familydoctor"}
	c, err = IsDerivable(cat, outside, meta)
	if err != nil {
		t.Fatal(err)
	}
	if c.Derivable {
		t.Error("familydoctor report must not be derivable")
	}
	if len(c.Reasons) == 0 || !strings.Contains(c.Reasons[0], "familydoctor") {
		t.Errorf("reasons = %v", c.Reasons)
	}

	// A report selecting a column the meta does not expose is NOT
	// derivable.
	uncovered := &report.Definition{ID: "uncovered",
		Query: "SELECT doctor FROM prescriptions"}
	c, err = IsDerivable(cat, uncovered, meta)
	if err != nil {
		t.Fatal(err)
	}
	if c.Derivable {
		t.Error("uncovered column must not be derivable")
	}
}

func TestIsDerivableFilterContainment(t *testing.T) {
	cat, _ := testCatalog()
	meta := &MetaReport{ID: "m", Query: "SELECT patient AS patient, drug AS drug, disease AS disease FROM prescriptions WHERE disease <> 'HIV'"}
	// Report confined to asthma rows: implied by disease <> 'HIV'.
	ok1, err := IsDerivable(cat, &report.Definition{ID: "r1",
		Query: "SELECT patient FROM prescriptions WHERE disease = 'asthma'"}, meta)
	if err != nil {
		t.Fatal(err)
	}
	if !ok1.Derivable {
		t.Errorf("asthma report should be derivable: %v", ok1.Reasons)
	}
	// Unfiltered report: not confined to the meta's rows.
	ok2, err := IsDerivable(cat, &report.Definition{ID: "r2",
		Query: "SELECT patient FROM prescriptions"}, meta)
	if err != nil {
		t.Fatal(err)
	}
	if ok2.Derivable {
		t.Error("unfiltered report must not be derivable from filtered meta")
	}
}

func TestCoveringMeta(t *testing.T) {
	cat, _ := testCatalog()
	metas, _, err := Derive(cat, portfolio())
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := CoveringMeta(cat, portfolio()[0], metas)
	if err != nil {
		t.Fatal(err)
	}
	if m == nil {
		t.Fatal("no covering meta found")
	}
	m2, c, err := CoveringMeta(cat, &report.Definition{ID: "x",
		Query: "SELECT patient FROM familydoctor"}, metas)
	if err != nil {
		t.Fatal(err)
	}
	if m2 != nil || len(c.Reasons) == 0 {
		t.Errorf("m2 = %v, reasons = %v", m2, c.Reasons)
	}
}

// --- compliance test generation (E7 machinery) ---

func complianceSetup(t *testing.T) (*policy.Registry, *sql.Catalog, *provenance.Tracer, *report.Definition) {
	t.Helper()
	cat, tr := testCatalog()
	reg := policy.NewRegistry()
	plas, err := policy.ParseFile(`
pla "meta-pla" {
    owner "hospital"; level metareport; scope "meta-rx";
    allow attribute drug to roles analyst;
    allow attribute patient to roles analyst when disease <> 'HIV';
    aggregate min 5 by patient;
    filter when disease <> 'hepatitis';
}
`)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range plas {
		if err := reg.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	def := &report.Definition{ID: "drug-consumption",
		Query: "SELECT drug, COUNT(*) AS consumption FROM prescriptions GROUP BY drug"}
	return reg, cat, tr, def
}

func TestGenerateTestsShape(t *testing.T) {
	reg, cat, tr, _ := complianceSetup(t)
	def := &report.Definition{ID: "rx-list",
		Query: "SELECT patient, drug, disease FROM prescriptions"}
	tests, err := GenerateTests(reg, cat, tr, def, report.Consumer{Role: "analyst"}, []string{"meta-rx"})
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	for _, tc := range tests {
		kinds[tc.Kind]++
	}
	// disease: default-deny access test; patient: conditional test;
	// the PLA's filter and aggregation rules each yield one test.
	if kinds["access"] != 1 || kinds["condition"] != 1 {
		t.Errorf("kinds = %v", kinds)
	}
	if kinds["aggregation"] != 1 || kinds["filter"] != 1 {
		t.Errorf("kinds = %v", kinds)
	}

	// An unconditionally-allowed aggregated report generates only the
	// aggregation test.
	aggDef := &report.Definition{ID: "drug-consumption",
		Query: "SELECT drug, COUNT(*) AS consumption FROM prescriptions GROUP BY drug"}
	aggTests, err := GenerateTests(reg, cat, tr, aggDef, report.Consumer{Role: "analyst"}, []string{"meta-rx"})
	if err != nil {
		t.Fatal(err)
	}
	aggKinds := map[string]int{}
	for _, tc := range aggTests {
		aggKinds[tc.Kind]++
	}
	if aggKinds["aggregation"] != 1 || aggKinds["filter"] != 0 {
		t.Errorf("agg kinds = %v", aggKinds)
	}
}

func TestComplianceSuiteDetectsViolations(t *testing.T) {
	reg, cat, tr, def := complianceSetup(t)
	tests, err := GenerateTests(reg, cat, tr, def, report.Consumer{Role: "analyst"}, []string{"meta-rx"})
	if err != nil {
		t.Fatal(err)
	}

	// A compliant output: aggregated with all groups >= 5 distinct
	// patients (drop DM which has only 2).
	good, err := cat.Query("SELECT drug, COUNT(*) AS consumption FROM prescriptions WHERE drug <> 'DM' GROUP BY drug")
	if err != nil {
		t.Fatal(err)
	}
	if fails := RunTests(tests, good); len(fails) != 0 {
		t.Errorf("compliant output failed: %v", fails)
	}

	// A buggy output that kept the DM group (threshold bug) is caught.
	bad, err := cat.Query("SELECT drug, COUNT(*) AS consumption FROM prescriptions GROUP BY drug")
	if err != nil {
		t.Fatal(err)
	}
	fails := RunTests(tests, bad)
	if len(fails) == 0 {
		t.Fatal("threshold bug not detected")
	}
	if !strings.Contains(fails[0], "support") {
		t.Errorf("failures = %v", fails)
	}
}

func TestComplianceSuiteDetectsMaskingBug(t *testing.T) {
	reg, cat, tr, _ := complianceSetup(t)
	def := &report.Definition{ID: "rx-list",
		Query: "SELECT patient, drug, disease FROM prescriptions"}
	tests, err := GenerateTests(reg, cat, tr, def, report.Consumer{Role: "analyst"}, []string{"meta-rx"})
	if err != nil {
		t.Fatal(err)
	}
	// The raw render exposes HIV patients (condition bug) and the
	// disease column (default-deny bug): the suite must flag it.
	raw, err := cat.Query(def.Query)
	if err != nil {
		t.Fatal(err)
	}
	fails := RunTests(tests, raw)
	if len(fails) < 2 {
		t.Errorf("failures = %v", fails)
	}
}

func TestDeriveWithMaxWidth(t *testing.T) {
	cat, _ := testCatalog()
	defs := []*report.Definition{
		{ID: "a", Query: "SELECT drug, COUNT(*) AS n FROM prescriptions GROUP BY drug"},
		{ID: "b", Query: "SELECT disease, COUNT(*) AS n FROM prescriptions GROUP BY disease"},
		{ID: "c", Query: "SELECT patient, date FROM prescriptions"},
		{ID: "d", Query: "SELECT doctor, COUNT(*) AS n FROM prescriptions GROUP BY doctor"},
	}
	// Unlimited: one meta covers everything.
	wide, _, err := DeriveWith(cat, defs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(wide) != 1 {
		t.Fatalf("unlimited metas = %d", len(wide))
	}
	// Width 2: several narrow metas, each executable, each covering its
	// members.
	narrow, assign, err := DeriveWith(cat, defs, Options{MaxWidth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(narrow) < 2 {
		t.Fatalf("narrow metas = %d", len(narrow))
	}
	byID := map[string]*MetaReport{}
	for _, m := range narrow {
		if _, err := cat.Query(m.Query); err != nil {
			t.Errorf("meta %s does not run: %v", m.ID, err)
		}
		byID[m.ID] = m
	}
	for _, d := range defs {
		m := byID[assign[d.ID]]
		if m == nil {
			t.Fatalf("report %s unassigned", d.ID)
		}
		c, err := IsDerivable(cat, d, m)
		if err != nil {
			t.Fatal(err)
		}
		if !c.Derivable {
			t.Errorf("report %s not derivable from its narrow meta: %v", d.ID, c.Reasons)
		}
	}
	// A single over-wide report still gets its own meta.
	big := []*report.Definition{{ID: "wide", Query: "SELECT patient, doctor, drug, disease, date FROM prescriptions"}}
	bigMetas, _, err := DeriveWith(cat, big, Options{MaxWidth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(bigMetas) != 1 {
		t.Errorf("over-wide report metas = %d", len(bigMetas))
	}
}
