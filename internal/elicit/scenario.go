// Package elicit operationalizes the paper's Fig. 5 continuum: it
// measures, per PLA-attachment level (source, warehouse, meta-report,
// report), the cost of the initial requirements elicitation (how much
// schema the owner must understand, how many PLA atoms must be authored,
// how many of them are over-engineered) and the stability of the agreed
// requirements under a simulated report-evolution workload, using the
// real meta-report derivability checker to decide when a change escapes
// the already-approved scope.
package elicit

import (
	"fmt"
	"math/rand"

	"plabi/internal/metareport"
	"plabi/internal/relation"
	"plabi/internal/report"
	"plabi/internal/sql"
	"plabi/internal/workload"
)

// Scenario bundles the artifacts of one BI deployment at every level.
type Scenario struct {
	Cat *sql.Catalog
	// SourceTables are the original per-owner tables (full schemas,
	// including columns the BI application never loads).
	SourceTables []string
	// Warehouse is the name of the materialized wide warehouse table.
	Warehouse string
	// Reports is the evolving report portfolio.
	Reports *report.Registry
	// Metas is the current approved meta-report set; Assign maps report
	// ids to their covering meta-report.
	Metas  []*metareport.MetaReport
	Assign map[string]string
	// MetaOpts controls meta-report granularity (§5's design knob).
	MetaOpts metareport.Options

	// Column pools used by the evolution generator.
	coveredCols    []string // exposed by the current metas
	dwUnusedCols   []string // in the warehouse but not in any meta
	sourceOnlyCols []string // in a source but not loaded to the warehouse
	rng            *rand.Rand
	nextID         int
}

// reportTemplate instantiates one initial report over the warehouse.
type reportTemplate struct {
	id    string
	query string
}

// BuildHealthcareScenario constructs the standard evaluation scenario:
// the multi-source healthcare workload, a wide warehouse table loading a
// subset of the source columns, an initial portfolio of nReports reports
// drawn from rotating templates, and the derived meta-report set.
func BuildHealthcareScenario(seed int64, nReports int) (*Scenario, error) {
	ds, err := workload.Generate(workload.DefaultConfig(seed))
	if err != nil {
		return nil, fmt.Errorf("elicit: generate workload: %w", err)
	}
	cat := sql.NewCatalog()
	for _, t := range []*relation.Table{ds.Prescriptions, ds.FamilyDoctor, ds.DrugCost, ds.LabResults, ds.Residents} {
		cat.Register(t)
	}

	// The warehouse loads prescriptions ⋈ drugcost ⋈ residents — a
	// subset of the source columns (rx_id, lab details, municipality
	// stay source-only).
	wideSQL := `SELECT p.patient AS patient, p.doctor AS doctor, p.drug AS drug,
		p.disease AS disease, p.date AS date, c.cost AS cost,
		r.age AS age, r.zip AS zip
		FROM prescriptions p
		JOIN drugcost c ON p.drug = c.drug
		JOIN residents r ON p.patient = r.patient`
	wide, err := cat.Query(wideSQL)
	if err != nil {
		return nil, fmt.Errorf("elicit: build warehouse: %w", err)
	}
	dwh := relation.NewBase("dwh", wide.Schema.Clone())
	dwh.Rows = wide.Rows
	cat.Register(dwh)

	s := &Scenario{
		Cat:          cat,
		SourceTables: []string{"prescriptions", "familydoctor", "drugcost", "labresults", "residents"},
		Warehouse:    "dwh",
		Reports:      report.NewRegistry(),
		rng:          rand.New(rand.NewSource(seed + 1)),
	}

	templates := []reportTemplate{
		{"drug-consumption", "SELECT drug, COUNT(*) AS consumption FROM dwh GROUP BY drug"},
		{"drug-spend", "SELECT drug, SUM(cost) AS spend FROM dwh GROUP BY drug"},
		{"disease-by-year", "SELECT disease, YEAR(date) AS yr, COUNT(*) AS n FROM dwh GROUP BY disease, YEAR(date)"},
		{"asthma-activity", "SELECT drug, COUNT(*) AS n FROM dwh WHERE disease = 'asthma' GROUP BY drug"},
		{"age-profile", "SELECT drug, AVG(age) AS avg_age FROM dwh GROUP BY drug"},
		{"cost-overview", "SELECT disease, SUM(cost) AS total FROM dwh GROUP BY disease"},
		{"monthly-volume", "SELECT MONTH(date) AS m, COUNT(*) AS n FROM dwh GROUP BY MONTH(date)"},
		{"doctor-activity", "SELECT doctor, COUNT(*) AS n FROM dwh GROUP BY doctor"},
	}
	for i := 0; i < nReports; i++ {
		t := templates[i%len(templates)]
		id := t.id
		if i >= len(templates) {
			id = fmt.Sprintf("%s-%d", t.id, i/len(templates))
		}
		if err := s.Reports.Create(&report.Definition{ID: id, Title: id, Query: t.query}); err != nil {
			return nil, err
		}
	}
	if err := s.rederiveMetas(); err != nil {
		return nil, err
	}
	s.rebuildPools()
	return s, nil
}

// rederiveMetas recomputes the meta-report set from the current portfolio
// — the action taken when a meta-level re-elicitation happens.
func (s *Scenario) rederiveMetas() error {
	metas, assign, err := metareport.DeriveWith(s.Cat, s.Reports.All(), s.MetaOpts)
	if err != nil {
		return fmt.Errorf("elicit: derive metas: %w", err)
	}
	for _, m := range metas {
		m.Approved = true
	}
	s.Metas = metas
	s.Assign = assign
	return nil
}

// rebuildPools recomputes the generator's column pools.
func (s *Scenario) rebuildPools() {
	metaCols := map[string]bool{}
	for _, m := range s.Metas {
		prof, err := sql.ProfileSQL(s.Cat, m.Query)
		if err != nil {
			continue
		}
		for name := range prof.OutputNames {
			metaCols[name] = true
		}
	}
	dwh, _ := s.Cat.Table(s.Warehouse)
	dwhCols := map[string]bool{}
	s.coveredCols = nil
	s.dwUnusedCols = nil
	for _, c := range dwh.Schema.ColumnNames() {
		dwhCols[c] = true
		if metaCols[c] {
			s.coveredCols = append(s.coveredCols, c)
		} else {
			s.dwUnusedCols = append(s.dwUnusedCols, c)
		}
	}
	s.sourceOnlyCols = nil
	for _, tn := range s.SourceTables {
		t, ok := s.Cat.Table(tn)
		if !ok {
			continue
		}
		for _, c := range t.Schema.ColumnNames() {
			if !dwhCols[c] {
				s.sourceOnlyCols = append(s.sourceOnlyCols, tn+"."+c)
			}
		}
	}
}

// UsedColumns returns the set of warehouse columns any current report
// reads (outputs or filters) — the denominator of the over-engineering
// metric.
func (s *Scenario) UsedColumns() (map[string]bool, error) {
	used := map[string]bool{}
	for _, d := range s.Reports.All() {
		prof, err := sql.ProfileSQL(s.Cat, d.Query)
		if err != nil {
			return nil, err
		}
		for _, c := range prof.OutputCols {
			used[c.Column] = true
		}
		for _, c := range prof.Conjuncts {
			used[c.Col.Column] = true
		}
		for _, c := range prof.GroupKeys {
			used[c.Column] = true
		}
	}
	return used, nil
}

// Rederive recomputes the approved meta-report set under the current
// MetaOpts and refreshes the generator pools — call after changing the
// granularity options.
func (s *Scenario) Rederive() error {
	if err := s.rederiveMetas(); err != nil {
		return err
	}
	s.rebuildPools()
	return nil
}
