package plabi

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// closeTracker is an audit sink recording lifecycle calls.
type closeTracker struct {
	mu      sync.Mutex
	buf     bytes.Buffer
	flushed bool
	closed  bool
}

func (c *closeTracker) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, errors.New("write after close")
	}
	return c.buf.Write(p)
}

func (c *closeTracker) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.flushed = true
	return nil
}

func (c *closeTracker) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	return nil
}

func TestEngineCloseFlushesAndClosesSink(t *testing.T) {
	sink := &closeTracker{}
	e := Open(WithAuditSink(sink))
	e.Audit().Append(AuditEvent{Kind: "render", Object: "r1"})
	if sink.buf.Len() == 0 {
		t.Fatal("expected event streamed to sink before Close")
	}
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if !sink.flushed || !sink.closed {
		t.Fatalf("Close left sink flushed=%v closed=%v, want both true", sink.flushed, sink.closed)
	}
	// Idempotent; later appends stay in memory without touching the sink.
	if err := e.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	before := sink.buf.Len()
	e.Audit().Append(AuditEvent{Kind: "render", Object: "r2"})
	if sink.buf.Len() != before {
		t.Fatal("append after Close reached the closed sink")
	}
	if e.Audit().Len() != 2 {
		t.Fatalf("in-memory log has %d events, want 2", e.Audit().Len())
	}
}

func TestOpenHealthcareRejectsOptionMisuse(t *testing.T) {
	cases := []struct {
		name string
		opt  Option
		want string
	}{
		{"negative workers", WithWorkers(-2), "WithWorkers"},
		{"negative cache", WithCacheSize(-1), "WithCacheSize"},
		{"nil metrics", WithMetrics(nil), "WithMetrics(nil)"},
		{"nil injector", WithFaultInjector(nil), "WithFaultInjector(nil)"},
		{"bad jitter", WithRetryPolicy(RetryPolicy{Jitter: 2}), "jitter"},
		{"negative backoff", WithRetryPolicy(RetryPolicy{Base: -time.Second}), "negative"},
		{"unknown retry site", WithRetryPolicyFor("render.nope", RetryPolicy{}), "unknown site"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := OpenHealthcare(HealthcareConfig{Prescriptions: 100}, tc.opt)
			if err == nil {
				t.Fatalf("OpenHealthcare accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestOpenClampsOptionMisuse(t *testing.T) {
	// The same misuse OpenHealthcare rejects must leave Open fully
	// functional: negatives fall back to defaults, unknown sites drop.
	e := Open(
		WithWorkers(-4),
		WithCacheSize(-10),
		WithFaultInjector(nil),
		WithRetryPolicyFor("render.nope", RetryPolicy{MaxAttempts: 99}),
		WithRetryPolicy(RetryPolicy{Base: -time.Second}),
	)
	if e == nil {
		t.Fatal("Open returned nil")
	}
	if err := e.AddPLAs(`pla "p" { owner "o"; level source; scope "t"; allow attribute a; }`); err != nil {
		t.Fatalf("clamped engine unusable: %v", err)
	}
}

// flakySink fails its first n writes with a transient error.
type flakySink struct {
	mu   sync.Mutex
	fail int
	buf  bytes.Buffer
}

func (f *flakySink) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail > 0 {
		f.fail--
		return 0, errors.New("transient sink outage")
	}
	return f.buf.Write(p)
}

func TestWithRetryPolicyForAuditSiteOverride(t *testing.T) {
	// Default policy disabled, audit.sink.write retried hard: the first
	// event survives a 3-write outage because only the per-site override
	// governs the sink boundary.
	sink := &flakySink{fail: 3}
	e := Open(
		WithAuditSink(sink),
		WithRetryPolicy(RetryPolicy{}), // one attempt everywhere else
		WithRetryPolicyFor("audit.sink.write", RetryPolicy{
			MaxAttempts: 5, Base: time.Microsecond, Max: 10 * time.Microsecond}),
	)
	e.Audit().Append(AuditEvent{Kind: "render", Object: "r1"})
	if got := sink.buf.Len(); got == 0 {
		t.Fatal("event dropped despite per-site retry override")
	}
	if drops := e.MetricsSnapshot().Counters["audit.sink_drops"]; drops != 0 {
		t.Fatalf("audit.sink_drops = %d, want 0", drops)
	}

	// Control: without the override the zero policy gives up immediately.
	sink2 := &flakySink{fail: 3}
	e2 := Open(WithAuditSink(sink2), WithRetryPolicy(RetryPolicy{}))
	e2.Audit().Append(AuditEvent{Kind: "render", Object: "r1"})
	if sink2.buf.Len() != 0 {
		t.Fatal("zero policy unexpectedly retried the sink write")
	}
	if drops := e2.MetricsSnapshot().Counters["audit.sink_drops"]; drops != 1 {
		t.Fatalf("audit.sink_drops = %d, want 1", drops)
	}
}
