package elicit

import (
	"fmt"

	"plabi/internal/policy"
	"plabi/internal/sql"
)

// LevelCost quantifies the initial elicitation at one PLA level — the
// horizontal axis of Fig. 5 (ease of elicitation) and the §3
// over-engineering claim (E6).
type LevelCost struct {
	Level policy.Level
	// Artifacts is the number of schema artifacts discussed with the
	// owners (source tables, the warehouse schema, meta-reports, or
	// reports).
	Artifacts int
	// Vocabulary is the total number of attributes the owners must
	// understand across those artifacts.
	Vocabulary int
	// VocabPerArtifact is the average size of one elicitation discussion.
	VocabPerArtifact float64
	// AbstractElements counts vocabulary discussed as bare schema, with
	// no concrete data rendering in front of the owner: all of it at the
	// source and warehouse levels (§3: "managers ... are unaware of the
	// meaning of the data in the tables"), none at the meta-report and
	// report levels, where the owner sees populated tables (§5).
	AbstractElements int
	// Atoms is the number of PLA atoms authored (closed world: one
	// access atom per exposed attribute).
	Atoms int
	// UnusedAtoms covers attributes no delivered report ever uses.
	UnusedAtoms int
	// Burden is AbstractElements + VocabPerArtifact: the comprehension
	// cost of one elicitation campaign. Ease is 1/Burden — higher is
	// easier, matching Fig. 5's upward arrow toward reports.
	Burden float64
	Ease   float64
	// OverEngineering is UnusedAtoms/Atoms (§3).
	OverEngineering float64
}

// MeasureCosts computes the per-level elicitation costs for the scenario.
func MeasureCosts(s *Scenario) ([]LevelCost, error) {
	used, err := s.UsedColumns()
	if err != nil {
		return nil, err
	}
	var out []LevelCost

	// Source level: every source table's full schema is on the table.
	src := LevelCost{Level: policy.LevelSource, Artifacts: len(s.SourceTables)}
	for _, tn := range s.SourceTables {
		t, ok := s.Cat.Table(tn)
		if !ok {
			return nil, fmt.Errorf("elicit: unknown source table %q", tn)
		}
		for _, c := range t.Schema.ColumnNames() {
			src.Vocabulary++
			src.Atoms++
			if !used[c] {
				src.UnusedAtoms++
			}
		}
	}
	src.AbstractElements = src.Vocabulary // schema-only discussion (§3)
	out = append(out, finishCost(src))

	// Warehouse level: one artifact, the loaded schema.
	dwh, ok := s.Cat.Table(s.Warehouse)
	if !ok {
		return nil, fmt.Errorf("elicit: unknown warehouse table %q", s.Warehouse)
	}
	wh := LevelCost{Level: policy.LevelWarehouse, Artifacts: 1}
	for _, c := range dwh.Schema.ColumnNames() {
		wh.Vocabulary++
		wh.Atoms++
		if !used[c] {
			wh.UnusedAtoms++
		}
	}
	wh.AbstractElements = wh.Vocabulary // integrated but still abstract (§4)
	out = append(out, finishCost(wh))

	// Meta-report level: the derived wide views.
	mr := LevelCost{Level: policy.LevelMetaReport, Artifacts: len(s.Metas)}
	for _, m := range s.Metas {
		prof, err := sql.ProfileSQL(s.Cat, m.Query)
		if err != nil {
			return nil, err
		}
		for name := range prof.OutputNames {
			mr.Vocabulary++
			mr.Atoms++
			if !used[name] {
				mr.UnusedAtoms++
			}
		}
	}
	out = append(out, finishCost(mr))

	// Report level: every delivered report individually.
	reports := s.Reports.All()
	rp := LevelCost{Level: policy.LevelReport, Artifacts: len(reports)}
	for _, d := range reports {
		prof, err := sql.ProfileSQL(s.Cat, d.Query)
		if err != nil {
			return nil, err
		}
		rp.Vocabulary += len(prof.OutputNames)
		rp.Atoms += len(prof.OutputNames)
		// By construction report atoms cover exactly what is shown.
	}
	out = append(out, finishCost(rp))
	return out, nil
}

func finishCost(c LevelCost) LevelCost {
	if c.Artifacts > 0 {
		c.VocabPerArtifact = float64(c.Vocabulary) / float64(c.Artifacts)
	}
	c.Burden = float64(c.AbstractElements) + c.VocabPerArtifact
	if c.Burden > 0 {
		c.Ease = 1 / c.Burden
	}
	if c.Atoms > 0 {
		c.OverEngineering = float64(c.UnusedAtoms) / float64(c.Atoms)
	}
	return c
}
