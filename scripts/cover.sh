#!/usr/bin/env bash
# Coverage gate: the packages that carry the enforcement semantics and the
# relational kernel must stay above FLOOR percent statement coverage.
# Writes coverage.out for the whole module so `go tool cover -html` works.
set -euo pipefail

FLOOR="${COVER_FLOOR:-80}"
GATED_PKGS=(internal/relation internal/enforce)

go test -coverprofile=coverage.out ./... >/dev/null

fail=0
for pkg in "${GATED_PKGS[@]}"; do
    line=$(go test -cover "./$pkg" | grep -E '^ok' || true)
    pct=$(echo "$line" | grep -oE '[0-9]+\.[0-9]+% of statements' | grep -oE '^[0-9]+\.[0-9]+')
    if [ -z "$pct" ]; then
        echo "cover: could not determine coverage for $pkg" >&2
        fail=1
        continue
    fi
    ok=$(awk -v p="$pct" -v f="$FLOOR" 'BEGIN { print (p >= f) ? 1 : 0 }')
    if [ "$ok" = "1" ]; then
        echo "cover: $pkg ${pct}% >= ${FLOOR}% (ok)"
    else
        echo "cover: FAIL: $pkg ${pct}% is below the ${FLOOR}% floor" >&2
        fail=1
    fi
done
exit $fail
