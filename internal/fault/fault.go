// Package fault is the engine's failure-handling substrate: a
// deterministic, seedable fault-injection layer, bounded-exponential
// retry with jitter, and panic isolation for worker-pool goroutines.
//
// The paper frames meta-reports as pre-deployment *test cases* for
// ETL/report compliance (§5); this package extends that idea to the
// failure scenarios. Every operational boundary of the engine — source
// access, ETL steps, enforcement workers, audit-sink writes — consults
// an optional Injector keyed by a stable site name, so chaos suites can
// drive randomized-but-reproducible fault schedules through the full
// stack and assert the enforcement invariants hold: a failing component
// degrades into a typed error, never a process crash, and never into
// un-audited data reaching a consumer.
//
// Design constraints mirror internal/obs: stdlib only (fault sits below
// etl, enforce, audit and core), every method nil-receiver-safe so
// instrumentation points need no nil checks, and all randomness derived
// from an explicit seed so a failing schedule can be replayed exactly.
package fault

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"plabi/internal/obs"
)

// Canonical injection-site names. Boundaries consult the injector under
// these keys; chaos schedules and docs refer to them.
const (
	// SiteETLExtract is the source-access boundary (retryable).
	SiteETLExtract = "etl.extract"
	// SiteETLStep wraps every ETL step execution.
	SiteETLStep = "etl.step"
	// SiteETLDelta wraps each per-step delta application during an
	// incremental refresh (Pipeline.ApplyDelta).
	SiteETLDelta = "etl.delta"
	// SiteRenderWorker wraps each render row-enforcement chunk.
	SiteRenderWorker = "render.worker"
	// SiteAuditSink wraps each audit-sink write (retryable).
	SiteAuditSink = "audit.sink.write"
	// SiteReleaseSource wraps each source-level anonymized release.
	SiteReleaseSource = "release.source"
	// SiteSegmentRead wraps each segment partition read (retryable).
	SiteSegmentRead = "relation.segment.read"
)

// Sites lists every registered injection site.
func Sites() []string {
	return []string{SiteETLExtract, SiteETLStep, SiteETLDelta, SiteRenderWorker, SiteAuditSink, SiteReleaseSource, SiteSegmentRead}
}

// ErrInjected is the sentinel behind every injected error, matched with
// errors.Is.
var ErrInjected = errors.New("injected fault")

// SiteError is one injected error. Transient injected errors report
// Temporary() == true and are eligible for retry.
type SiteError struct {
	// Site is the injection site that fired.
	Site string
	// Fire is the global fire ordinal within the injector's schedule.
	Fire uint64
	// transient marks the error retryable.
	transient bool
}

// Error implements error.
func (e *SiteError) Error() string {
	return fmt.Sprintf("fault: injected error at %s (fire %d)", e.Site, e.Fire)
}

// Unwrap lets errors.Is(err, ErrInjected) succeed.
func (e *SiteError) Unwrap() error { return ErrInjected }

// Temporary reports whether the injected error is retryable.
func (e *SiteError) Temporary() bool { return e.transient }

// PanicValue is what an injected panic panics with, so recovery sites
// can distinguish injected panics from organic ones in tests.
type PanicValue struct {
	Site string
	Fire uint64
}

// String implements fmt.Stringer.
func (p *PanicValue) String() string {
	return fmt.Sprintf("injected panic at %s (fire %d)", p.Site, p.Fire)
}

// SiteConfig configures fault injection at one site. Rates are
// per-call probabilities in [0, 1]; at most one fault fires per call
// (panic wins over error over latency when the draw lands in an
// overlapping region).
type SiteConfig struct {
	// ErrorRate is the probability of returning an injected error.
	ErrorRate float64
	// PanicRate is the probability of panicking with *PanicValue.
	PanicRate float64
	// LatencyRate is the probability of sleeping Latency (honouring
	// ctx cancellation) before returning cleanly.
	LatencyRate float64
	// Latency is the injected delay for latency fires.
	Latency time.Duration
	// Transient marks injected errors retryable (Temporary() == true).
	Transient bool
	// Times bounds the total fires at this site (0 = unlimited). A
	// Times-bounded site with rate 1 yields a deterministic
	// "fail N times, then succeed" schedule for retry tests.
	Times int
}

// Fire records one fired fault, for schedule artifacts and replay.
type Fire struct {
	// Seq is the global fire ordinal across all sites.
	Seq uint64 `json:"seq"`
	// Site is the injection site.
	Site string `json:"site"`
	// Kind is "error", "panic" or "latency".
	Kind string `json:"kind"`
	// Call is the per-site call ordinal the fault fired on.
	Call uint64 `json:"call"`
	// Transient marks an injected error retryable, so a replayed error
	// keeps its retry eligibility.
	Transient bool `json:"transient,omitempty"`
}

// Injector injects faults at named sites from a seeded schedule. The
// nil injector is a no-op, so boundaries call Hit unconditionally. All
// methods are safe for concurrent use; per-site randomness derives from
// the seed, so a fixed seed replays the same per-call schedule.
type Injector struct {
	seed    int64
	metrics atomic.Pointer[obs.Metrics]

	mu       sync.Mutex
	sites    map[string]*siteState
	fires    uint64
	schedule []Fire
	// replay, when non-nil, pins the fault schedule: site -> per-site
	// call ordinal -> recorded fire. The RNG and the site rates are
	// bypassed entirely (see ReplaySchedule).
	replay map[string]map[uint64]Fire
}

type siteState struct {
	cfg   SiteConfig
	rng   *rand.Rand
	calls uint64
	fired int
}

// NewInjector returns an injector with no enabled sites.
func NewInjector(seed int64) *Injector {
	return &Injector{seed: seed, sites: map[string]*siteState{}}
}

// Seed returns the injector's seed.
func (i *Injector) Seed() int64 {
	if i == nil {
		return 0
	}
	return i.seed
}

// SetMetrics attaches an observability registry: fires maintain the
// fault.injected counters and emit fault.inject spans.
func (i *Injector) SetMetrics(m *obs.Metrics) {
	if i == nil {
		return
	}
	i.metrics.Store(m)
}

func (i *Injector) obs() *obs.Metrics {
	if i == nil {
		return nil
	}
	return i.metrics.Load()
}

// Enable configures injection at one site, replacing any previous
// configuration. The site's randomness is seeded from the injector seed
// and the site name, so enabling sites in a different order does not
// change per-site schedules.
func (i *Injector) Enable(site string, cfg SiteConfig) {
	if i == nil {
		return
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	i.sites[site] = &siteState{cfg: cfg, rng: rand.New(rand.NewSource(i.seed ^ int64(siteHash(site))))}
}

// siteHash is a stable FNV-1a over the site name.
func siteHash(site string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(site); i++ {
		h ^= uint64(site[i])
		h *= 1099511628211
	}
	return h
}

// fire is the resolved decision for one Hit call.
type fire struct {
	kind  string
	seq   uint64
	delay time.Duration
}

// Hit consults the injector at a site. It returns an injected error,
// panics with *PanicValue, sleeps an injected latency (honouring ctx:
// a cancelled sleep returns the context error), or — for unconfigured
// sites, nil injectors and clean draws — returns nil.
func (i *Injector) Hit(ctx context.Context, site string) error {
	if i == nil {
		return nil
	}
	f, transient := i.decide(site)
	if f == nil {
		return nil
	}
	m := i.obs()
	m.Counter("fault.injected").Inc()
	m.Counter("fault.injected." + site).Inc()
	_, span := m.StartSpan(ctx, "fault.inject")
	span.Set("site", site)
	span.Set("kind", f.kind)
	defer span.End()
	switch f.kind {
	case "latency":
		if err := sleepCtx(ctx, f.delay); err != nil {
			return err
		}
		return nil
	case "error":
		return &SiteError{Site: site, Fire: f.seq, transient: transient}
	default: // panic
		span.End()
		panic(&PanicValue{Site: site, Fire: f.seq})
	}
}

// ReplaySchedule switches the injector to replay mode: instead of
// drawing fault fates from the seeded RNG, the injector fires exactly
// the recorded faults — same site, same per-site call ordinal, same
// kind, same transience — and nothing else. Site rates, Times bounds
// and the seed are ignored; sites named by the schedule are tracked on
// demand, so the replay injector needs no Enable calls. Combined with a
// deterministic execution order (single-worker engine), replaying the
// Schedule() of a previous run reproduces it exactly even after the
// site configuration has changed; latency fires reuse the site's
// configured Latency (zero when the site was never enabled).
func (i *Injector) ReplaySchedule(fires []Fire) {
	if i == nil {
		return
	}
	plan := map[string]map[uint64]Fire{}
	for _, f := range fires {
		byCall := plan[f.Site]
		if byCall == nil {
			byCall = map[uint64]Fire{}
			plan[f.Site] = byCall
		}
		byCall[f.Call] = f
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	i.replay = plan
}

// decide draws the fate of one call under the injector lock.
func (i *Injector) decide(site string) (*fire, bool) {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.replay != nil {
		return i.decideReplay(site)
	}
	st, ok := i.sites[site]
	if !ok {
		return nil, false
	}
	st.calls++
	if st.cfg.Times > 0 && st.fired >= st.cfg.Times {
		return nil, false
	}
	r := st.rng.Float64()
	var kind string
	switch {
	case r < st.cfg.PanicRate:
		kind = "panic"
	case r < st.cfg.PanicRate+st.cfg.ErrorRate:
		kind = "error"
	case r < st.cfg.PanicRate+st.cfg.ErrorRate+st.cfg.LatencyRate:
		kind = "latency"
	default:
		return nil, false
	}
	st.fired++
	i.fires++
	f := &fire{kind: kind, seq: i.fires, delay: st.cfg.Latency}
	i.schedule = append(i.schedule, Fire{Seq: f.seq, Site: site, Kind: kind, Call: st.calls, Transient: st.cfg.Transient})
	return f, st.cfg.Transient
}

// decideReplay resolves one call against the pinned schedule. Called
// with i.mu held.
func (i *Injector) decideReplay(site string) (*fire, bool) {
	byCall, ok := i.replay[site]
	if !ok {
		return nil, false
	}
	st := i.sites[site]
	if st == nil {
		st = &siteState{}
		i.sites[site] = st
	}
	st.calls++
	rec, ok := byCall[st.calls]
	if !ok {
		return nil, false
	}
	st.fired++
	i.fires++
	f := &fire{kind: rec.Kind, seq: i.fires, delay: st.cfg.Latency}
	i.schedule = append(i.schedule, Fire{Seq: f.seq, Site: site, Kind: rec.Kind, Call: st.calls, Transient: rec.Transient})
	return f, rec.Transient
}

// Schedule returns a copy of every fault fired so far, in fire order —
// the replayable artifact a failing chaos run uploads.
func (i *Injector) Schedule() []Fire {
	if i == nil {
		return nil
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return append([]Fire(nil), i.schedule...)
}

// Counts returns the number of fires per site, for run summaries.
func (i *Injector) Counts() map[string]int {
	out := map[string]int{}
	for _, f := range i.Schedule() {
		out[f.Site]++
	}
	return out
}

// String summarizes the injector's fire counts in sorted site order.
func (i *Injector) String() string {
	counts := i.Counts()
	sites := make([]string, 0, len(counts))
	for s := range counts {
		sites = append(sites, s)
	}
	sort.Strings(sites)
	out := fmt.Sprintf("fault injector (seed %d):", i.Seed())
	if len(sites) == 0 {
		return out + " no fires"
	}
	for _, s := range sites {
		out += fmt.Sprintf(" %s=%d", s, counts[s])
	}
	return out
}

// sleepCtx sleeps d, returning early with the context error when ctx is
// cancelled first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
