package audit

import (
	"bytes"
	"strings"
	"testing"

	"plabi/internal/enforce"
	"plabi/internal/policy"
	"plabi/internal/provenance"
	"plabi/internal/relation"
	"plabi/internal/workload"
)

func TestLogAppendAndQuery(t *testing.T) {
	l := NewLog()
	l.Append(Event{Kind: "extract", Object: "prescriptions"})
	l.Append(Event{Kind: "render", Actor: "analyst", Object: "drug-consumption"})
	l.Decision("analyst", "drug-consumption", enforce.Decision{
		Outcome: enforce.Mask, Rule: "access-deny", Subject: "patient",
	})
	l.Decision("analyst", "joined", enforce.Decision{
		Outcome: enforce.Block, Rule: "join-permission", Subject: "a JOIN b",
	})
	if l.Len() != 4 {
		t.Fatalf("len = %d", l.Len())
	}
	ev := l.Events()
	for i, e := range ev {
		if e.Seq != i {
			t.Errorf("seq %d = %d", i, e.Seq)
		}
	}
	if got := l.Violations(); len(got) != 1 || got[0].Outcome != "block" {
		t.Errorf("violations = %v", got)
	}
	if got := l.ByKind("render"); len(got) != 1 {
		t.Errorf("renders = %v", got)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	l := NewLog()
	l.Append(Event{Kind: "extract", Object: "prescriptions", Detail: "5 rows"})
	l.Decision("ana", "rep", enforce.Decision{
		Outcome: enforce.Mask, Rule: "condition", Subject: "cell",
		Evidence: []string{"prescriptions#0 fails (disease <> 'HIV')"},
	})
	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("len = %d", got.Len())
	}
	ev := got.Events()
	if ev[0].Object != "prescriptions" || !strings.Contains(ev[1].Detail, "HIV") {
		t.Errorf("events = %v", ev)
	}
}

func TestReadJSONLBadInput(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{not json")); err == nil {
		t.Error("expected parse error")
	}
	l, err := ReadJSONL(strings.NewReader("\n\n"))
	if err != nil || l.Len() != 0 {
		t.Errorf("blank input: %v %d", err, l.Len())
	}
}

func TestResolveDispute(t *testing.T) {
	// Build a tiny render: drug consumption over the paper fixture.
	pres := workload.PrescriptionsFixture()
	tr := provenance.NewTracer()
	tr.RegisterBase(pres)
	grouped, err := relation.GroupBy(pres, []string{"drug"}, []relation.AggSpec{{Kind: relation.AggCount, As: "n"}})
	if err != nil {
		t.Fatal(err)
	}
	grouped.Name = "drug-consumption"

	g := provenance.NewGraph()
	g.AddStep("extract", []string{"hospital.prescriptions"}, "prescriptions", "", 5, 5)
	g.AddStep("aggregate", []string{"prescriptions"}, "drug-consumption", "", 5, 4)

	reg := policy.NewRegistry()
	pla, err := policy.ParseOne(`pla "hospital-prescriptions" {
		owner "hospital"; level source; scope "prescriptions"; allow attribute drug;
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Add(pla); err != nil {
		t.Fatal(err)
	}

	a := &Auditor{Registry: reg, Tracer: tr, Graph: g}
	// Find the DR row (count 2).
	drRow := -1
	for i := range grouped.Rows {
		if grouped.Get(i, "drug").S == "DR" {
			drRow = i
		}
	}
	d, err := a.ResolveDispute(grouped, drRow, "n")
	if err != nil {
		t.Fatal(err)
	}
	if d.Value.I != 2 {
		t.Errorf("value = %v", d.Value)
	}
	if len(d.PLAs["prescriptions"]) != 1 || d.PLAs["prescriptions"][0] != "hospital-prescriptions" {
		t.Errorf("plas = %v", d.PLAs)
	}
	if len(d.Transformations) != 2 {
		t.Errorf("transformations = %v", d.Transformations)
	}
	s := d.String()
	if !strings.Contains(s, "drug-consumption") || !strings.Contains(s, "hospital-prescriptions") {
		t.Errorf("dispute string = %s", s)
	}
	// Unknown column errors.
	if _, err := a.ResolveDispute(grouped, 0, "ghost"); err == nil {
		t.Error("expected error")
	}
}
