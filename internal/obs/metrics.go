package obs

import "sync/atomic"

// Counter is a monotonically increasing atomic counter. The nil counter
// is a no-op.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value (queue depth, entry count). The
// nil gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the value by d (negative to decrease).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}
