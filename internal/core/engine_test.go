package core

import (
	"strings"
	"sync"
	"testing"

	"plabi/internal/enforce"
	"plabi/internal/metareport"
	"plabi/internal/policy"
	"plabi/internal/report"
	"plabi/internal/workload"
)

func smallEngine(t *testing.T) (*Engine, *workload.Dataset) {
	t.Helper()
	cfg := workload.DefaultConfig(42)
	cfg.Patients, cfg.Prescriptions, cfg.LabResults = 120, 800, 100
	e, ds, err := BuildHealthcareEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e, ds
}

func TestBuildHealthcareEngine(t *testing.T) {
	e, ds := smallEngine(t)
	// The wide staging table exists and joins all permitted sources.
	wide, ok := e.Table("rx_wide")
	if !ok {
		t.Fatal("rx_wide missing")
	}
	if wide.NumRows() != ds.Prescriptions.NumRows() {
		t.Errorf("wide rows = %d, want %d", wide.NumRows(), ds.Prescriptions.NumRows())
	}
	for _, col := range []string{"patient", "drug", "cost", "age", "zip"} {
		if !wide.Schema.HasColumn(col) {
			t.Errorf("rx_wide lacks %q (%s)", col, wide.Schema)
		}
	}
	// Meta-reports derived and every report assigned.
	if len(e.MetaReports()) == 0 {
		t.Fatal("no metas")
	}
	for _, d := range e.Reports.All() {
		if e.Assignment(d.ID) == "" {
			t.Errorf("report %s unassigned", d.ID)
		}
	}
	// ETL steps audited.
	if len(e.Audit.ByKind("transform")) < 6 {
		t.Errorf("transform events = %d", len(e.Audit.ByKind("transform")))
	}
}

func TestRenderDrugConsumptionEnforced(t *testing.T) {
	e, _ := smallEngine(t)
	enf, err := e.Render("drug-consumption", report.Consumer{Name: "ana", Role: "analyst", Purpose: "quality"})
	if err != nil {
		t.Fatal(err)
	}
	if enf.Table.NumRows() == 0 {
		t.Fatal("empty report")
	}
	// Aggregation threshold: every remaining group has >= 3 distinct
	// patients. (Suppressed groups recorded as decisions.)
	for _, d := range enf.Decisions {
		if d.Outcome == enforce.Block {
			t.Errorf("unexpected block: %v", d)
		}
	}
	// Render audited.
	if len(e.Audit.ByKind("render")) != 1 {
		t.Error("render not audited")
	}
}

func TestRenderPatientActivityMasksHIV(t *testing.T) {
	e, _ := smallEngine(t)
	enf, err := e.Render("patient-activity", report.Consumer{Name: "ana", Role: "analyst", Purpose: "reimbursement"})
	if err != nil {
		t.Fatal(err)
	}
	// The report is non-aggregated; the hospital PLA has an aggregation
	// threshold, so static checking blocks it outright.
	blocked := false
	for _, d := range enf.Decisions {
		if d.Outcome == enforce.Block && d.Rule == "aggregation-threshold" {
			blocked = true
		}
	}
	if !blocked {
		t.Errorf("expected static block, decisions = %v", enf.Decisions)
	}
	if enf.Table.NumRows() != 0 {
		t.Error("blocked report must be empty")
	}
}

func TestCheckReportCompliance(t *testing.T) {
	e, _ := smallEngine(t)
	ds, err := e.CheckReportCompliance("drug-consumption", report.Consumer{Role: "analyst", Purpose: "quality"})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range ds {
		if d.Outcome == enforce.Block {
			t.Errorf("drug-consumption should be compliant: %v", d)
		}
	}
	// A report over a forbidden join is caught.
	if err := e.DefineReport(&report.Definition{ID: "linkage",
		Query: "SELECT p.patient FROM prescriptions p JOIN familydoctor f ON p.patient = f.patient"}); err != nil {
		t.Fatal(err)
	}
	ds, err = e.CheckReportCompliance("linkage", report.Consumer{Role: "analyst"})
	if err != nil {
		t.Fatal(err)
	}
	foundBlock := false
	for _, d := range ds {
		if d.Outcome == enforce.Block {
			foundBlock = true
		}
	}
	if !foundBlock {
		t.Errorf("forbidden-join report not caught: %v", ds)
	}
	if _, err := e.CheckReportCompliance("ghost", report.Consumer{}); err == nil {
		t.Error("unknown report must fail")
	}
}

func TestComplianceSuiteCatchesRawRender(t *testing.T) {
	e, _ := smallEngine(t)
	consumer := report.Consumer{Role: "analyst", Purpose: "quality"}
	tests, err := e.ComplianceSuite("drug-consumption", consumer)
	if err != nil {
		t.Fatal(err)
	}
	if len(tests) == 0 {
		t.Fatal("no tests generated")
	}
	// The ENFORCED output passes the suite.
	enf, err := e.Render("drug-consumption", consumer)
	if err != nil {
		t.Fatal(err)
	}
	if fails := metareport.RunTests(tests, enf.Table); len(fails) != 0 {
		t.Errorf("enforced output fails suite: %v", fails)
	}
	// The RAW (unenforced) output fails it: the threshold test notices
	// under-supported groups, if any exist; with 120 patients over many
	// drugs, small groups exist.
	d, _ := e.Reports.Get("drug-consumption")
	raw, err := d.Render(e.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	if raw.NumRows() > enf.Table.NumRows() {
		if fails := metareport.RunTests(tests, raw); len(fails) == 0 {
			t.Error("raw output with extra groups should fail the suite")
		}
	}
}

func TestAuditorDispute(t *testing.T) {
	e, _ := smallEngine(t)
	enf, err := e.Render("drug-consumption", report.Consumer{Name: "ana", Role: "analyst", Purpose: "quality"})
	if err != nil {
		t.Fatal(err)
	}
	a := e.Auditor()
	d, err := a.ResolveDispute(enf.Table, 0, "consumption")
	if err != nil {
		t.Fatal(err)
	}
	if len(d.PLAs) == 0 {
		t.Error("dispute lacks PLAs")
	}
	if len(d.Transformations) == 0 {
		t.Error("dispute lacks transformation chain")
	}
	if !strings.Contains(d.String(), "hospital-prescriptions") {
		t.Errorf("dispute = %s", d)
	}
}

func TestSourceEnforcerFromEngine(t *testing.T) {
	e, ds := smallEngine(t)
	rel, rep, err := e.SourceEnforcer().Release(ds.Residents)
	if err != nil {
		t.Fatal(err)
	}
	if rep.KAnonStats.Partitions == 0 {
		t.Error("k-anonymity not applied to residents")
	}
	if rel.NumRows()+rep.RowsSuppressed != ds.Residents.NumRows() {
		t.Error("row accounting broken")
	}
}

func TestQueryRewriterFromEngine(t *testing.T) {
	e, _ := smallEngine(t)
	out, decisions, err := e.QueryRewriter().RewriteSQL(
		"SELECT patient, disease FROM prescriptions", "analyst", "quality")
	if err != nil {
		t.Fatal(err)
	}
	if out == "" {
		t.Fatalf("query blocked: %v", decisions)
	}
	// disease is only allowed to auditors: the analyst sees a masked
	// column.
	if !strings.Contains(out, "'***'") {
		t.Errorf("rewritten = %q", out)
	}
}

func TestEngineValidation(t *testing.T) {
	e := New()
	if err := e.AddPLAs("not a pla"); err == nil {
		t.Error("bad DSL must fail")
	}
	if _, err := e.Render("nope", report.Consumer{}); err == nil {
		t.Error("unknown report must fail")
	}
	if _, err := e.ComplianceSuite("nope", report.Consumer{}); err == nil {
		t.Error("unknown report must fail")
	}
}

// TestWarehouseLevelPLAOnWideTable verifies that PLAs elicited at the
// warehouse level, scoped to the warehouse relation itself (Fig. 3:
// "meta-data in the DWH"), govern reports rendered over it.
func TestWarehouseLevelPLAOnWideTable(t *testing.T) {
	e, _ := smallEngine(t)
	if err := e.AddPLAs(`
pla "dwh-age" {
    owner "bi-provider"; level warehouse; scope "rx_wide";
    deny attribute age to roles analyst;
}`); err != nil {
		t.Fatal(err)
	}
	if err := e.DefineReport(&report.Definition{ID: "ages",
		Query: "SELECT drug, age, COUNT(*) AS n FROM rx_wide GROUP BY drug, age LIMIT 20"}); err != nil {
		t.Fatal(err)
	}
	enf, err := e.Render("ages", report.Consumer{Role: "analyst", Purpose: "quality"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < enf.Table.NumRows(); i++ {
		if enf.Table.Get(i, "age").S != "***" {
			t.Fatal("warehouse-level deny on rx_wide.age not enforced")
		}
	}
	found := false
	for _, d := range enf.Decisions {
		if d.Rule == "access-deny" && d.Subject == "age" {
			found = true
		}
	}
	if !found {
		t.Errorf("decisions = %v", enf.Decisions)
	}
}

// TestPurposeScopedAccess verifies purpose-based access control (the
// P-RBAC-style dimension of §1): an allow restricted to one purpose does
// not release data requested under another.
func TestPurposeScopedAccess(t *testing.T) {
	e, _ := smallEngine(t)
	if err := e.AddPLAs(`
pla "purpose-rule" {
    owner "hospital"; level report; scope "purpose-report";
    allow attribute drug purpose "reimbursement";
}`); err != nil {
		t.Fatal(err)
	}
	if err := e.DefineReport(&report.Definition{ID: "purpose-report",
		Query: "SELECT drug, COUNT(*) AS n FROM rx_wide GROUP BY drug LIMIT 5"}); err != nil {
		t.Fatal(err)
	}
	// Matching purpose: drug visible.
	enf, err := e.Render("purpose-report", report.Consumer{Role: "analyst", Purpose: "reimbursement"})
	if err != nil {
		t.Fatal(err)
	}
	if enf.Table.NumRows() == 0 || enf.Table.Get(0, "drug").S == "***" {
		t.Errorf("reimbursement purpose should see drug: %v", enf.Table.Rows)
	}
	// Mismatched purpose: masked (the source-level drug allow in the
	// scenario PLAs has no purpose restriction, so restrict the check to
	// the report-level PLA only).
	e.Enforcer().SetLevels([]policy.Level{policy.LevelReport})
	enf2, err := e.Render("purpose-report", report.Consumer{Role: "analyst", Purpose: "marketing"})
	if err != nil {
		t.Fatal(err)
	}
	if enf2.Table.NumRows() > 0 && enf2.Table.Get(0, "drug").S != "***" {
		t.Errorf("marketing purpose should be masked: %v", enf2.Table.Rows)
	}
}

// TestConcurrentRenders exercises the engine's read paths under
// concurrency: many consumers rendering simultaneously must neither race
// nor interfere (run with -race).
func TestConcurrentRenders(t *testing.T) {
	e, _ := smallEngine(t)
	consumers := []report.Consumer{
		{Name: "a1", Role: "analyst", Purpose: "quality"},
		{Name: "a2", Role: "auditor", Purpose: "quality"},
	}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, d := range e.Reports.All() {
				if _, err := e.Render(d.ID, consumers[w%len(consumers)]); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// 8 workers × 5 reports renders audited.
	if got := len(e.Audit.ByKind("render")); got != 40 {
		t.Errorf("renders audited = %d", got)
	}
}
