// Package plabi is a from-scratch Go reproduction of "Engineering
// Privacy Requirements in Business Intelligence Applications" (Chiasera,
// Casati, Daniel, Velegrakis — SDM 2008): a privacy-aware BI engine in
// which Privacy Level Agreements elicited from data-source owners are
// modeled, enforced, tested and audited at four levels of the BI stack —
// sources, warehouse/ETL, meta-reports, and delivered reports.
//
// The root package is the public API. Open an engine with functional
// options, register sources and PLAs, run guarded ETL, and render
// enforced reports:
//
//	engine := plabi.Open(plabi.WithAuditSink(w), plabi.WithWorkers(8))
//	engine.AddSource(plabi.NewSource("hospital", "hospital", table))
//	err := engine.AddPLAs(`pla "p" { owner "hospital"; level source;
//	    scope "prescriptions"; allow attribute drug; }`)
//	err = engine.DefineReport(&plabi.ReportDefinition{ID: "rx",
//	    Query: "SELECT drug FROM prescriptions"})
//	enf, err := engine.Render(ctx, "rx", plabi.Consumer{Role: "analyst"})
//
// Render, RunETL and CheckReportCompliance take a context.Context and
// are safe to call from many goroutines at once. Enforcement decisions
// that do not depend on the data (PLA composition, static checks,
// parsed plans) are cached per (report, role, purpose) in a sharded
// cache invalidated by generation counters, so AddPLAs and
// DeriveMetaReports take effect on the very next render. Refusals are
// typed: errors.Is(err, plabi.ErrPLAViolation) matches any enforcement
// block and errors.As recovers the *plabi.BlockedError carrying the
// decisions.
//
// Every engine is observable: a dependency-free metrics registry
// (counters, gauges, latency histograms) and span tracer instrument the
// whole enforcement path. MetricsSnapshot reads every metric (the
// decision-cache counters folded in), WriteMetricsJSON and DebugHandler
// expose the same snapshot as JSON and over HTTP (/metrics plus
// /debug/pprof), and Spans returns recent operations with their
// correlation ids — the same ids stamped on the audit events each
// operation appended, so the audit trail, metrics and spans join on one
// id. Ids are deterministic; WithCorrelationID stitches in an external
// request id. WithMetrics shares one registry across engines or, with
// nil, disables instrumentation. README.md § Observability lists every
// exported metric name.
//
// Engine lifecycle: Open cannot fail — option misuse (negative worker or
// cache bounds, nil injectors, unknown retry sites) is clamped to the
// documented defaults — while OpenHealthcare validates the same options
// and returns an error, since it already has an error path. An engine
// needs no explicit shutdown unless it streams audit events: Close
// flushes and closes the audit sink (when the writer supports it) and
// detaches it, so the trail reaches stable storage before the writer is
// released. Close never interrupts in-flight operations — worker pools
// are per-operation and drain with them — so callers stop issuing work,
// let it drain, then Close. This is exactly the teardown plabid performs
// when a tenant's policy bundle is swapped: build the new engine, swap
// the serving pointer, drain the old engine's in-flight requests, Close.
// WithRetryPolicyFor tunes the retry budget per operational site, e.g.
// retrying audit.sink.write much harder than etl.extract under
// WithFailClosed, where a dropped audit line refuses a render.
//
// plabi.OpenHealthcare assembles the paper's Fig. 1 healthcare scenario
// (five owners, scenario PLAs, guarded ETL, report portfolio, approved
// meta-reports) over a deterministic synthetic workload. See README.md
// for the tour, docs/ARCHITECTURE.md for the level-by-level data flow,
// docs/PLA_REFERENCE.md for the PLA language, DESIGN.md for the system
// inventory and concurrency model, and EXPERIMENTS.md for the
// paper-claim vs measured results. bench_test.go carries one benchmark
// per experiment plus the render-path concurrency benchmarks
// (BenchmarkConcurrentRender).
package plabi
