package policy

import (
	"encoding/json"
	"strings"
	"testing"

	"plabi/internal/relation"
)

const hospitalPLA = `
# PLA elicited with the hospital for the prescriptions source (Fig. 2).
pla "hospital-prescriptions" {
    owner "hospital";
    level source;
    scope "prescriptions";
    purpose "reimbursement", "quality";

    allow attribute patient to roles analyst when disease <> 'HIV';
    allow attribute drug;
    deny attribute disease to roles analyst;
    aggregate min 5 by patient;
    anonymize attribute patient using pseudonym;
    anonymize attribute date using generalize level 2;
    release kanonymity 5 quasi age, zip ldiversity 2 on disease;
    forbid join with familydoctor;
    allow join with drugcost;
    forbid integration for municipality;
    retain 365 days;
    filter when disease <> 'HIV';
}
`

func mustParseOne(t *testing.T, src string) *PLA {
	t.Helper()
	p, err := ParseOne(src)
	if err != nil {
		t.Fatalf("ParseOne: %v", err)
	}
	return p
}

func TestParseFullPLA(t *testing.T) {
	p := mustParseOne(t, hospitalPLA)
	if p.ID != "hospital-prescriptions" || p.Owner != "hospital" {
		t.Errorf("header = %q/%q", p.ID, p.Owner)
	}
	if p.Level != LevelSource || p.Scope != "prescriptions" {
		t.Errorf("level/scope = %v/%q", p.Level, p.Scope)
	}
	if len(p.Purposes) != 2 || p.Purposes[0] != "reimbursement" {
		t.Errorf("purposes = %v", p.Purposes)
	}
	if len(p.Access) != 3 {
		t.Fatalf("access rules = %d", len(p.Access))
	}
	if p.Access[0].When == nil || !strings.Contains(p.Access[0].When.String(), "HIV") {
		t.Errorf("condition = %v", p.Access[0].When)
	}
	if len(p.Aggregations) != 1 || p.Aggregations[0].MinCount != 5 || p.Aggregations[0].By != "patient" {
		t.Errorf("aggregations = %v", p.Aggregations)
	}
	if len(p.Anonymize) != 2 || p.Anonymize[1].Method != AnonGeneralize || p.Anonymize[1].Param != 2 {
		t.Errorf("anonymize = %v", p.Anonymize)
	}
	if len(p.Release) != 1 || p.Release[0].K != 5 || p.Release[0].L != 2 || p.Release[0].Sensitive != "disease" {
		t.Errorf("release = %v", p.Release)
	}
	if len(p.Joins) != 2 || p.Joins[0].Effect != Deny || p.Joins[0].Other != "familydoctor" {
		t.Errorf("joins = %v", p.Joins)
	}
	if len(p.Integrations) != 1 || p.Integrations[0].Effect != Deny {
		t.Errorf("integrations = %v", p.Integrations)
	}
	if p.Retention == nil || p.Retention.Days != 365 {
		t.Errorf("retention = %v", p.Retention)
	}
	if len(p.Filters) != 1 {
		t.Errorf("filters = %v", p.Filters)
	}
	// 3 access + 1 aggregation + 2 anonymize + 1 release + 2 join +
	// 1 integration + 1 retention + 1 filter.
	if p.Atoms() != 12 {
		t.Errorf("atoms = %d, want 12", p.Atoms())
	}
}

func TestRoundTrip(t *testing.T) {
	p := mustParseOne(t, hospitalPLA)
	printed := p.String()
	p2, err := ParseOne(printed)
	if err != nil {
		t.Fatalf("re-parse of printed PLA failed: %v\n%s", err, printed)
	}
	if p2.String() != printed {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s", printed, p2.String())
	}
}

func TestParseMultiplePLAs(t *testing.T) {
	src := `
pla "a" { scope "t1"; allow attribute x; }
pla "b" { scope "t2"; deny attribute y; }
`
	plas, err := ParseFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(plas) != 2 || plas[0].ID != "a" || plas[1].ID != "b" {
		t.Errorf("plas = %v", plas)
	}
}

func TestParseErrorsDSL(t *testing.T) {
	bad := []string{
		``,
		`pla "x" {`,
		`pla "x" { scope "t"; aggregate min 0; }`,
		`pla "x" { scope "t"; release kanonymity 1 quasi a; }`,
		`pla "x" { scope "t"; release kanonymity 3 quasi a ldiversity 2; }`,
		`pla "x" { scope "t"; anonymize attribute a using nope; }`,
		`pla "x" { scope "t"; retain 0 days; }`,
		`pla "x" { scope "t"; bogus clause; }`,
		`pla "x" { scope "t"; filter when disease <> ; }`,
		`pla "x" { allow attribute a; }`, // no scope
		`pla "x" { scope "t"; allow nothing; }`,
	}
	for _, src := range bad {
		if _, err := ParseFile(src); err == nil {
			t.Errorf("ParseFile(%q) should fail", src)
		}
	}
}

func TestDecideAttribute(t *testing.T) {
	p := mustParseOne(t, hospitalPLA)
	// analyst can see patient (conditionally).
	d := p.DecideAttribute("patient", "analyst", "reimbursement")
	if d.Effect != Allow || len(d.Conditions) != 1 {
		t.Errorf("patient/analyst = %v", d)
	}
	// disease is denied to analysts.
	d = p.DecideAttribute("disease", "analyst", "reimbursement")
	if d.Effect != Deny {
		t.Errorf("disease/analyst = %v", d)
	}
	// drug is allowed to everyone.
	d = p.DecideAttribute("drug", "auditor", "")
	if d.Effect != Allow || len(d.Conditions) != 0 {
		t.Errorf("drug/auditor = %v", d)
	}
	// unknown attribute defaults to deny (closed world).
	d = p.DecideAttribute("doctor", "analyst", "")
	if d.Effect != Deny || len(d.Matched) != 0 {
		t.Errorf("doctor/analyst = %v", d)
	}
	// patient rule is scoped to analysts; other roles have no allow.
	d = p.DecideAttribute("patient", "auditor", "")
	if d.Effect != Deny {
		t.Errorf("patient/auditor = %v", d)
	}
}

func TestDenyDominates(t *testing.T) {
	src := `pla "x" { scope "t";
		allow attribute a to roles analyst;
		deny attribute a;
	}`
	p := mustParseOne(t, src)
	if d := p.DecideAttribute("a", "analyst", ""); d.Effect != Deny {
		t.Errorf("deny must dominate, got %v", d)
	}
}

func TestWildcardAttribute(t *testing.T) {
	src := `pla "x" { scope "t"; allow attribute * to roles auditor; }`
	p := mustParseOne(t, src)
	if d := p.DecideAttribute("anything", "auditor", ""); d.Effect != Allow {
		t.Errorf("wildcard allow failed: %v", d)
	}
	if d := p.DecideAttribute("anything", "analyst", ""); d.Effect != Deny {
		t.Errorf("wildcard should not leak to other roles: %v", d)
	}
}

func TestJoinAllowed(t *testing.T) {
	p := mustParseOne(t, hospitalPLA)
	if ok, _ := p.JoinAllowed("familydoctor"); ok {
		t.Error("familydoctor join must be forbidden")
	}
	if ok, _ := p.JoinAllowed("drugcost"); !ok {
		t.Error("drugcost join must be allowed")
	}
	// With join rules elicited, unlisted joins default to deny.
	if ok, _ := p.JoinAllowed("labresults"); ok {
		t.Error("unlisted join must be denied once join rules exist")
	}
	// With no join rules, joins are unconstrained.
	p2 := mustParseOne(t, `pla "y" { scope "t"; allow attribute a; }`)
	if ok, _ := p2.JoinAllowed("anything"); !ok {
		t.Error("no join rules must mean unconstrained")
	}
}

func TestIntegrationAllowed(t *testing.T) {
	p := mustParseOne(t, hospitalPLA)
	if ok, _ := p.IntegrationAllowed("municipality"); ok {
		t.Error("municipality integration must be forbidden")
	}
	if ok, _ := p.IntegrationAllowed("healthagency"); ok {
		t.Error("unlisted beneficiary defaults to deny")
	}
}

func TestMinAggregation(t *testing.T) {
	p := mustParseOne(t, hospitalPLA)
	if got := p.MinAggregation("patient"); got != 5 {
		t.Errorf("min by patient = %d", got)
	}
	if got := p.MinAggregation("doctor"); got != 0 {
		t.Errorf("min by doctor = %d", got)
	}
}

func TestComposeMostRestrictive(t *testing.T) {
	a := mustParseOne(t, `pla "a" { scope "t";
		allow attribute x;
		aggregate min 3 by patient;
		allow join with costs;
	}`)
	b := mustParseOne(t, `pla "b" { scope "t";
		allow attribute x when disease <> 'HIV';
		aggregate min 10 by patient;
		retain 30 days;
	}`)
	c := Compose(a, b)
	d := c.DecideAttribute("x", "analyst", "")
	if d.Effect != Allow || len(d.Conditions) != 1 {
		t.Errorf("composite decision = %v", d)
	}
	if got := c.MinAggregation("patient"); got != 10 {
		t.Errorf("composite threshold = %d, want max 10", got)
	}
	if got := c.Retention(); got != 30 {
		t.Errorf("composite retention = %d", got)
	}
	if len(c.Conflicts) != 0 {
		t.Errorf("unexpected conflicts: %v", c.Conflicts)
	}
}

func TestComposeDenyWins(t *testing.T) {
	a := mustParseOne(t, `pla "a" { scope "t"; allow attribute x; }`)
	b := mustParseOne(t, `pla "b" { scope "t"; deny attribute x; }`)
	c := Compose(a, b)
	if d := c.DecideAttribute("x", "any", ""); d.Effect != Deny {
		t.Errorf("deny must win: %v", d)
	}
	if len(c.Conflicts) != 1 || c.Conflicts[0].Kind != "access" {
		t.Errorf("conflicts = %v", c.Conflicts)
	}
}

func TestComposeJoinConflict(t *testing.T) {
	a := mustParseOne(t, `pla "a" { scope "t"; allow join with costs; }`)
	b := mustParseOne(t, `pla "b" { scope "t"; forbid join with costs; }`)
	c := Compose(a, b)
	if ok, reason := c.JoinAllowed("costs"); ok || reason == "" {
		t.Errorf("join should be denied with reason, got %v %q", ok, reason)
	}
	if len(c.Conflicts) != 1 || c.Conflicts[0].Kind != "join" {
		t.Errorf("conflicts = %v", c.Conflicts)
	}
}

func TestComposeAbstention(t *testing.T) {
	// A PLA with no rule about attribute z abstains; a single allow from
	// another PLA suffices.
	a := mustParseOne(t, `pla "a" { scope "t"; allow attribute z; }`)
	b := mustParseOne(t, `pla "b" { scope "t"; allow attribute other; }`)
	c := Compose(a, b)
	if d := c.DecideAttribute("z", "r", ""); d.Effect != Allow {
		t.Errorf("decision = %v", d)
	}
	// Nobody mentions w: deny.
	if d := c.DecideAttribute("w", "r", ""); d.Effect != Deny {
		t.Errorf("decision = %v", d)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	p := mustParseOne(t, hospitalPLA)
	if err := r.Add(p); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(p); err == nil {
		t.Error("duplicate id must fail")
	}
	q := mustParseOne(t, `pla "lab" { owner "lab"; level source; scope "labresults"; allow attribute result; }`)
	if err := r.Add(q); err != nil {
		t.Fatal(err)
	}
	comp := r.ForScope(LevelSource, "prescriptions")
	if len(comp.PLAs) != 1 || comp.PLAs[0].ID != "hospital-prescriptions" {
		t.Errorf("ForScope = %v", comp.PLAs)
	}
	comp = r.ForScopes(LevelSource, []string{"prescriptions", "labresults"})
	if len(comp.PLAs) != 2 {
		t.Errorf("ForScopes = %d", len(comp.PLAs))
	}
	if _, ok := r.ByID("lab"); !ok {
		t.Error("ByID failed")
	}
	if n := r.AtomCount(LevelSource); n != p.Atoms()+1 {
		t.Errorf("AtomCount = %d", n)
	}
	if n := r.AtomCount(LevelReport); n != 0 {
		t.Errorf("AtomCount(report) = %d", n)
	}
}

func TestWildcardScope(t *testing.T) {
	r := NewRegistry()
	p := mustParseOne(t, `pla "law" { owner "state"; level source; scope *; aggregate min 3; }`)
	if err := r.Add(p); err != nil {
		t.Fatal(err)
	}
	comp := r.ForScope(LevelSource, "anything")
	if len(comp.PLAs) != 1 {
		t.Errorf("wildcard scope should match: %v", comp.PLAs)
	}
}

func TestFilterConditionEvaluates(t *testing.T) {
	p := mustParseOne(t, hospitalPLA)
	schema := relation.NewSchema(relation.Col("disease", relation.TString))
	ok, err := relation.EvalPredicate(p.Filters[0].When, relation.Row{relation.Str("asthma")}, schema)
	if err != nil || !ok {
		t.Errorf("asthma should pass filter: %v %v", ok, err)
	}
	ok, err = relation.EvalPredicate(p.Filters[0].When, relation.Row{relation.Str("HIV")}, schema)
	if err != nil || ok {
		t.Errorf("HIV should fail filter: %v %v", ok, err)
	}
}

func TestLevelParse(t *testing.T) {
	for _, l := range Levels() {
		got, err := ParseLevel(l.String())
		if err != nil || got != l {
			t.Errorf("ParseLevel(%s) = %v, %v", l, got, err)
		}
	}
	if _, err := ParseLevel("nope"); err == nil {
		t.Error("expected error")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	p := mustParseOne(t, hospitalPLA)
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var q PLA
	if err := json.Unmarshal(data, &q); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, data)
	}
	// The DSL rendering is the canonical comparison.
	if q.String() != p.String() {
		t.Errorf("JSON round trip mismatch:\n%s\nvs\n%s", p, &q)
	}
	if q.Atoms() != p.Atoms() {
		t.Errorf("atoms %d vs %d", q.Atoms(), p.Atoms())
	}
}

func TestJSONRejectsInvalid(t *testing.T) {
	bad := []string{
		`{"id":"x","level":"nope","scope":"t"}`,
		`{"id":"x","level":"source","scope":""}`,
		`{"id":"x","level":"source","scope":"t","access":[{"effect":"???","attribute":"a"}]}`,
		`{"id":"x","level":"source","scope":"t","access":[{"effect":"allow","attribute":"a","when":"((("}]}`,
		`{"id":"x","level":"source","scope":"t","aggregations":[{"min_count":0}]}`,
		`{"id":"x","level":"source","scope":"t","anonymize":[{"attribute":"a","method":"wat"}]}`,
		`{"id":"x","level":"source","scope":"t","filters":["NOT ((("]}`,
	}
	for _, src := range bad {
		var p PLA
		if err := json.Unmarshal([]byte(src), &p); err == nil {
			t.Errorf("Unmarshal(%s) should fail", src)
		}
	}
}

func TestCompositeAccessors(t *testing.T) {
	a := mustParseOne(t, hospitalPLA)
	b := mustParseOne(t, `pla "b" { owner "lab"; level source; scope "prescriptions";
		anonymize attribute doctor using suppress;
		aggregate min 2;
		release kanonymity 3 quasi age;
		filter when drug <> 'DX';
		allow integration for hospital;
	}`)
	c := Compose(a, b)
	if got := len(c.AggregationRules()); got != 2 {
		t.Errorf("aggregation rules = %d", got)
	}
	if got := len(c.AnonymizeRules()); got != 3 {
		t.Errorf("anonymize rules = %d", got)
	}
	if got := len(c.ReleaseRules()); got != 2 {
		t.Errorf("release rules = %d", got)
	}
	if got := len(c.Filters()); got != 2 {
		t.Errorf("filters = %d", got)
	}
	if ok, reason := c.IntegrationAllowed("municipality"); ok || reason == "" {
		t.Errorf("integration = %v %q", ok, reason)
	}
	if ok, _ := c.IntegrationAllowed("hospital"); ok {
		// PLA "a" has integration rules not listing hospital: deny wins.
		t.Error("hospital integration should be denied by a's closed world")
	}
}

func TestConflictString(t *testing.T) {
	c := Conflict{Kind: "access", Subject: "disease", AllowBy: "a", DenyBy: "b"}
	if s := c.String(); !strings.Contains(s, "disease") || !strings.Contains(s, "a") {
		t.Errorf("String = %q", s)
	}
}

func TestDecideAttributeRefsScoping(t *testing.T) {
	hospital := mustParseOne(t, `pla "h" { owner "hospital"; level source; scope "prescriptions";
		allow attribute disease to roles auditor; }`)
	agency := mustParseOne(t, `pla "a" { owner "agency"; level source; scope "drugcost";
		allow attribute *; }`)
	reportPLA := mustParseOne(t, `pla "r" { owner "hospital"; level report; scope "rep";
		allow attribute spend; }`)
	c := Compose(hospital, agency, reportPLA)

	// disease originates from prescriptions: the agency's wildcard (scoped
	// to drugcost) must NOT grant it.
	refs := []AttrRef{{Name: "disease", Table: "prescriptions"}}
	if d := c.DecideAttributeRefs(refs, "analyst", ""); d.Effect != Deny {
		t.Errorf("cross-scope leak: %v", d)
	}
	if d := c.DecideAttributeRefs(refs, "auditor", ""); d.Effect != Allow {
		t.Errorf("auditor should see disease: %v", d)
	}
	// A drugcost-originated column is granted by the wildcard.
	if d := c.DecideAttributeRefs([]AttrRef{{Name: "cost", Table: "drugcost"}}, "analyst", ""); d.Effect != Allow {
		t.Errorf("drugcost wildcard failed: %v", d)
	}
	// Report-level rules match the bare output name (Table "").
	if d := c.DecideAttributeRefs([]AttrRef{{Name: "spend"}}, "analyst", ""); d.Effect != Allow {
		t.Errorf("report-level allow failed: %v", d)
	}
	// Source rules never match bare output names.
	if d := c.DecideAttributeRefs([]AttrRef{{Name: "cost"}}, "analyst", ""); d.Effect != Deny {
		t.Errorf("bare name should not hit source PLAs: %v", d)
	}
}

func TestRegistryAll(t *testing.T) {
	r := NewRegistry()
	if err := r.Add(mustParseOne(t, `pla "x" { scope "t"; allow attribute a; }`)); err != nil {
		t.Fatal(err)
	}
	all := r.All()
	if len(all) != 1 || all[0].ID != "x" {
		t.Errorf("all = %v", all)
	}
	// All returns a copy: mutating it does not affect the registry.
	all[0] = nil
	if r.All()[0] == nil {
		t.Error("All must return a copy")
	}
}

func TestDSLNameQuoting(t *testing.T) {
	// A PLA whose names collide with keywords or contain odd characters
	// must still round-trip.
	p := &PLA{ID: "weird", Scope: "my table", Level: LevelSource,
		Access: []AccessRule{{Effect: Allow, Attribute: "when"}},
		Joins:  []JoinRule{{Effect: Deny, Other: "other-table"}},
	}
	printed := p.String()
	q, err := ParseOne(printed)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, printed)
	}
	if q.Scope != "my table" || q.Access[0].Attribute != "when" || q.Joins[0].Other != "other-table" {
		t.Errorf("round trip = %+v", q)
	}
}

func TestParseOneRejectsMany(t *testing.T) {
	if _, err := ParseOne(`pla "a" { scope "t"; allow attribute x; } pla "b" { scope "t"; allow attribute y; }`); err == nil {
		t.Error("ParseOne must reject multiple PLAs")
	}
}
