// Package sql implements a small SQL dialect over the relation engine:
// SELECT (with joins, WHERE, GROUP BY, HAVING, ORDER BY, LIMIT, DISTINCT)
// and CREATE VIEW, plus query analysis used elsewhere in the library:
// structural profiles of queries (base tables, column origins, filter
// conjuncts) and conjunctive-predicate implication, the machinery behind
// the paper's intensional associations (§3), VPD-style query rewriting, and
// meta-report containment checks (§5).
package sql

import (
	"fmt"
	"strings"
	"unicode"

	"plabi/internal/relation"
)

// tokKind enumerates token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokKeyword
	tokString
	tokNumber
	tokOp    // operators and punctuation
	tokParam // ? placeholders are not supported; reserved
)

// token is one lexical token with its position for error messages.
type token struct {
	kind tokKind
	text string
	pos  int
}

// The reserved-word list lives in internal/relation next to QuoteIdent so
// the renderer quotes exactly the identifiers this lexer would refuse.

// lexer tokenizes a SQL string.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes src, returning the token stream or a positioned error.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case c == '\'':
			s, err := l.lexString()
			if err != nil {
				return nil, err
			}
			l.toks = append(l.toks, token{kind: tokString, text: s, pos: start})
		case unicode.IsDigit(rune(c)) || (c == '.' && l.pos+1 < len(l.src) && unicode.IsDigit(rune(l.src[l.pos+1]))):
			l.toks = append(l.toks, token{kind: tokNumber, text: l.lexNumber(), pos: start})
		case isIdentStart(c):
			word := l.lexIdent()
			up := strings.ToUpper(word)
			if relation.ReservedWord(up) {
				l.toks = append(l.toks, token{kind: tokKeyword, text: up, pos: start})
			} else {
				l.toks = append(l.toks, token{kind: tokIdent, text: word, pos: start})
			}
		case c == '"':
			// Quoted identifier.
			word, err := l.lexQuotedIdent()
			if err != nil {
				return nil, err
			}
			l.toks = append(l.toks, token{kind: tokIdent, text: word, pos: start})
		default:
			op, err := l.lexOp()
			if err != nil {
				return nil, err
			}
			l.toks = append(l.toks, token{kind: tokOp, text: op, pos: start})
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		// -- line comments
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		return
	}
}

func (l *lexer) lexString() (string, error) {
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			return b.String(), nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return "", fmt.Errorf("sql: unterminated string at %d", l.pos)
}

func (l *lexer) lexQuotedIdent() (string, error) {
	l.pos++ // opening quote
	start := l.pos
	for l.pos < len(l.src) {
		if l.src[l.pos] == '"' {
			s := l.src[start:l.pos]
			l.pos++
			return s, nil
		}
		l.pos++
	}
	return "", fmt.Errorf("sql: unterminated quoted identifier at %d", start)
}

func (l *lexer) lexNumber() string {
	start := l.pos
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if unicode.IsDigit(rune(c)) {
			l.pos++
			continue
		}
		if c == '.' && !seenDot {
			seenDot = true
			l.pos++
			continue
		}
		break
	}
	return l.src[start:l.pos]
}

func (l *lexer) lexIdent() string {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	// Allow qualified names a.b as a single ident token when directly
	// adjacent; simplifies the parser.
	for l.pos+1 < len(l.src) && l.src[l.pos] == '.' && isIdentStart(l.src[l.pos+1]) {
		l.pos++ // '.'
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
	}
	return l.src[start:l.pos]
}

func (l *lexer) lexOp() (string, error) {
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<>", "!=", "<=", ">=", "||":
		l.pos += 2
		if two == "!=" {
			return "<>", nil
		}
		return two, nil
	}
	c := l.src[l.pos]
	switch c {
	case '=', '<', '>', '(', ')', ',', '+', '-', '*', '/', '%', '.':
		l.pos++
		return string(c), nil
	}
	return "", fmt.Errorf("sql: unexpected character %q at %d", c, l.pos)
}
