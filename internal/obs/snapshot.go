package obs

import (
	"encoding/json"
	"io"
)

// Snapshot is a point-in-time copy of every registered metric. Maps are
// always non-nil, so callers may merge further entries in (the engine
// merges its cache and audit gauges this way).
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies every counter, gauge and histogram. Safe to call
// concurrently with writers; each metric is read atomically.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if m == nil {
		return s
	}
	m.counters.Range(func(k, v any) bool {
		s.Counters[k.(string)] = v.(*Counter).Value()
		return true
	})
	m.gauges.Range(func(k, v any) bool {
		s.Gauges[k.(string)] = v.(*Gauge).Value()
		return true
	})
	m.hists.Range(func(k, v any) bool {
		s.Histograms[k.(string)] = v.(*Histogram).Snapshot()
		return true
	})
	return s
}

// Flat renders the snapshot as one expvar-style map: counter and gauge
// names to numbers, histogram names to summary objects.
func (s Snapshot) Flat() map[string]any {
	out := make(map[string]any, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for k, v := range s.Counters {
		out[k] = v
	}
	for k, v := range s.Gauges {
		out[k] = v
	}
	for k, h := range s.Histograms {
		out[k] = map[string]any{
			"count":   h.Count,
			"sum_ns":  int64(h.Sum),
			"mean_ns": int64(h.Mean()),
			"p50_ns":  int64(h.Quantile(0.50)),
			"p99_ns":  int64(h.Quantile(0.99)),
		}
	}
	return out
}

// WriteJSON writes the full snapshot as indented JSON.
func (m *Metrics) WriteJSON(w io.Writer) error {
	return WriteSnapshotJSON(w, m.Snapshot())
}

// WriteSnapshotJSON writes an (optionally merged) snapshot as indented
// JSON.
func WriteSnapshotJSON(w io.Writer, s Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ExpvarFunc adapts the registry for expvar publication:
//
//	expvar.Publish("plabi", expvar.Func(m.ExpvarFunc()))
func (m *Metrics) ExpvarFunc() func() any {
	return func() any { return m.Snapshot().Flat() }
}
