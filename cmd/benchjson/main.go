// Command benchjson turns the output of the core benchmark suite
//
//	go test -run '^$' -bench '^BenchmarkCore' -benchmem .
//
// into BENCH_core.json: one record per benchmark plus the speedups of
// each execution mode over the reference baseline measured in the same
// run — vectorized over the seed's row-at-a-time operators (mode=row),
// vectorized join over the nested-loop baseline
// (BenchmarkCoreJoinNested), and the compiled residual-program render
// (mode=compiled) over the vectorized render. Recording both sides of
// every ratio in a single run keeps the perf trajectory honest: no number
// in the file was taken on a different machine, commit, or load.
//
// With -check, the tool enforces the acceptance floors at the largest
// scale: the hash join must beat the nested-loop reference and the
// batched render must beat the row-at-a-time reference by at least -min
// (default 5.0), and the compiled render must beat the vectorized render
// by at least -min-compiled (default 1.5). CI fails the bench job on a
// violation.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Family      string  `json:"family"`
	N           int     `json:"n"`
	Mode        string  `json:"mode,omitempty"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Speedup is one mode-over-baseline ratio at one scale.
type Speedup struct {
	Family string `json:"family"`
	N      int    `json:"n"`
	// Baseline names the denominator: "row" or "nested" under the
	// vectorized numerator, "vectorized" under the compiled one.
	Baseline   string  `json:"baseline"`
	FastNs     float64 `json:"fast_ns"`
	BaselineNs float64 `json:"baseline_ns"`
	Speedup    float64 `json:"speedup"`
}

// Report is the BENCH_core.json document.
type Report struct {
	Suite      string      `json:"suite"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	Benchmarks []Benchmark `json:"benchmarks"`
	Speedups   []Speedup   `json:"speedups"`
}

// benchLine matches a go-test benchmark result, e.g.
//
//	BenchmarkCoreJoin/n=100000/mode=vectorized-8  5  27555877 ns/op  17127030 B/op  1073 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func parse(r io.Reader) ([]Benchmark, error) {
	var out []Benchmark
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		b := Benchmark{Name: trimProcs(m[1])}
		b.Iterations, _ = strconv.Atoi(m[2])
		b.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			b.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			b.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		for _, seg := range strings.Split(b.Name, "/") {
			switch {
			case strings.HasPrefix(seg, "Benchmark"):
				b.Family = strings.TrimPrefix(seg, "BenchmarkCore")
			case strings.HasPrefix(seg, "n="):
				b.N, _ = strconv.Atoi(seg[2:])
			case strings.HasPrefix(seg, "mode="):
				b.Mode = seg[5:]
			}
		}
		out = append(out, b)
	}
	return out, sc.Err()
}

// trimProcs drops the trailing -<GOMAXPROCS> go test appends to the last
// name segment.
func trimProcs(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// speedups derives every same-run ratio the suite supports: vectorized
// vs row for each (family, n), vectorized join vs the nested-loop
// baseline family, and a compiled family (e.g. RenderCompiled) vs the
// vectorized mode of the family it specializes (Render).
func speedups(benchmarks []Benchmark) []Speedup {
	type key struct {
		family string
		n      int
		mode   string
	}
	ns := map[key]float64{}
	for _, b := range benchmarks {
		ns[key{b.Family, b.N, b.Mode}] = b.NsPerOp
	}
	var out []Speedup
	for _, b := range benchmarks {
		switch b.Mode {
		case "vectorized":
			if base, ok := ns[key{b.Family, b.N, "row"}]; ok && base > 0 {
				out = append(out, Speedup{Family: b.Family, N: b.N, Baseline: "row",
					FastNs: b.NsPerOp, BaselineNs: base, Speedup: base / b.NsPerOp})
			}
			if base, ok := ns[key{b.Family + "Nested", b.N, ""}]; ok && base > 0 {
				out = append(out, Speedup{Family: b.Family, N: b.N, Baseline: "nested",
					FastNs: b.NsPerOp, BaselineNs: base, Speedup: base / b.NsPerOp})
			}
		case "compiled":
			parent := strings.TrimSuffix(b.Family, "Compiled")
			if base, ok := ns[key{parent, b.N, "vectorized"}]; ok && base > 0 {
				out = append(out, Speedup{Family: b.Family, N: b.N, Baseline: "vectorized",
					FastNs: b.NsPerOp, BaselineNs: base, Speedup: base / b.NsPerOp})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Family != out[j].Family {
			return out[i].Family < out[j].Family
		}
		if out[i].N != out[j].N {
			return out[i].N < out[j].N
		}
		return out[i].Baseline < out[j].Baseline
	})
	return out
}

// check enforces the acceptance floors: at the largest measured scale,
// the hash join must be ≥ min× the nested-loop baseline, the batched
// render ≥ min× the row-at-a-time baseline, and the compiled render
// ≥ minCompiled× the vectorized render.
func check(sp []Speedup, min, minCompiled float64) error {
	floors := []struct {
		family, baseline string
		floor            float64
	}{
		{"Join", "nested", min},
		{"Render", "row", min},
		{"RenderCompiled", "vectorized", minCompiled},
	}
	for _, f := range floors {
		if err := enforceFloor(sp, f.family, f.baseline, f.floor); err != nil {
			return err
		}
	}
	return nil
}

// enforceFloor checks one family's speedup over one baseline at the
// largest measured scale.
func enforceFloor(sp []Speedup, family, baseline string, floor float64) error {
	best := Speedup{}
	for _, s := range sp {
		if s.Family == family && s.Baseline == baseline && s.N > best.N {
			best = s
		}
	}
	if best.N == 0 {
		return fmt.Errorf("missing %s-vs-%s measurement", family, baseline)
	}
	if best.Speedup < floor {
		return fmt.Errorf("%s at n=%d is only %.2fx the %s baseline (floor %.1fx)",
			family, best.N, best.Speedup, baseline, floor)
	}
	return nil
}

func main() {
	in := flag.String("in", "-", "benchmark output to parse ('-' for stdin)")
	out := flag.String("out", "BENCH_core.json", "where to write the JSON report")
	doCheck := flag.Bool("check", false, "fail unless the 100k join/render speedup floors hold")
	doCheckCompiled := flag.Bool("check-compiled", false, "fail unless the 100k compiled-render floor holds (for runs without the join families)")
	min := flag.Float64("min", 5.0, "vectorized-over-reference speedup floor enforced by -check")
	minCompiled := flag.Float64("min-compiled", 1.5, "compiled-over-vectorized render floor enforced by -check and -check-compiled")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}
	benchmarks, err := parse(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found in input")
		os.Exit(1)
	}
	rep := Report{
		Suite:      "core",
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Benchmarks: benchmarks,
		Speedups:   speedups(benchmarks),
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	for _, s := range rep.Speedups {
		fmt.Printf("%-10s n=%-7d vs %-6s %6.2fx\n", s.Family, s.N, s.Baseline, s.Speedup)
	}
	if *doCheck {
		if err := check(rep.Speedups, *min, *minCompiled); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: FAIL:", err)
			os.Exit(1)
		}
		fmt.Printf("speedup floors hold (>= %.1fx, compiled >= %.1fx)\n", *min, *minCompiled)
	}
	if *doCheckCompiled && !*doCheck {
		if err := enforceFloor(rep.Speedups, "RenderCompiled", "vectorized", *minCompiled); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: FAIL:", err)
			os.Exit(1)
		}
		fmt.Printf("compiled-render floor holds (>= %.1fx)\n", *minCompiled)
	}
}
