package sql

import (
	"strings"
	"testing"
)

// FuzzParseSelect drives the SQL lexer and parser with arbitrary input.
// The invariants are the ones the rest of the system leans on: the parser
// never panics, a successful parse yields a non-nil statement, and the
// statement's rendering re-parses to a statement that renders identically
// (String is the parser's own normal form, so it must be a fixed point).
func FuzzParseSelect(f *testing.F) {
	seeds := []string{
		"SELECT drug, COUNT(*) AS consumption FROM rx_wide GROUP BY drug ORDER BY drug",
		"SELECT p.drug, c.cost FROM prescriptions p JOIN drugcost c ON p.drug = c.drug WHERE p.disease = 'flu'",
		"SELECT DISTINCT city FROM patients WHERE age >= 65 ORDER BY city LIMIT 10",
		"SELECT a.x, b.y FROM t1 a LEFT JOIN t2 b ON a.id = b.id AND a.k = b.k",
		"SELECT SUM(cost) AS total, COUNT(DISTINCT patient) FROM rx GROUP BY drug, disease",
		"SELECT * FROM t WHERE NOT (a = 1 OR b < 2.5) AND c <> 'x'",
		"select x from t where s like 'a%b_c'",
		"SELECT x FROM t WHERE d IS NULL OR d IS NOT NULL",
		"SELECT 1 + 2 * 3 - -4 / 5 AS n FROM t",
		"SELECT x FROM",
		"SELECT FROM WHERE",
		"'unterminated",
		"SELECT \"quoted col\" FROM \"quoted table\"",
		"",
		"\x00\xff",
		strings.Repeat("(", 100) + "1" + strings.Repeat(")", 100),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := ParseSelect(src)
		if err != nil {
			return
		}
		if stmt == nil {
			t.Fatalf("nil statement without error for %q", src)
		}
		rendered := stmt.String()
		again, err := ParseSelect(rendered)
		if err != nil {
			t.Fatalf("rendering of %q does not re-parse: %q: %v", src, rendered, err)
		}
		if again.String() != rendered {
			t.Fatalf("String is not a fixed point:\n first: %q\nsecond: %q", rendered, again.String())
		}
	})
}
