package serve

import (
	"sync"
	"time"
)

// bucket is a token-bucket rate limiter: capacity burst, refilled at
// rate tokens per second. The nil bucket admits everything.
type bucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

// newBucket returns a limiter admitting rate requests per second with
// the given burst capacity (burst <= 0 defaults to rate, minimum 1).
// A rate <= 0 returns nil: unlimited.
func newBucket(rate, burst float64) *bucket {
	if rate <= 0 {
		return nil
	}
	if burst <= 0 {
		burst = rate
	}
	if burst < 1 {
		burst = 1
	}
	return &bucket{rate: rate, burst: burst, tokens: burst}
}

// allow consumes one token if available. The first call anchors the
// refill clock.
func (b *bucket) allow(now time.Time) bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// retryAfter estimates how long until one token is available, rounded
// up to whole seconds (for the Retry-After header).
func (b *bucket) retryAfter() time.Duration {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	missing := 1 - b.tokens
	if missing <= 0 {
		return time.Second
	}
	d := time.Duration(missing / b.rate * float64(time.Second))
	if rem := d % time.Second; rem != 0 {
		d += time.Second - rem
	}
	if d < time.Second {
		d = time.Second
	}
	return d
}
