package lint_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"plabi/internal/core"
	"plabi/internal/etl"
	"plabi/internal/lint"
	"plabi/internal/policy"
	"plabi/internal/relation"
	"plabi/internal/report"
	"plabi/internal/sql"
	"plabi/internal/workload"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// parseTestdata parses one corpus file with its repo-relative name so
// positions in golden files are stable.
func parseTestdata(t *testing.T, name string) []*policy.PLA {
	t.Helper()
	path := filepath.Join("testdata", name)
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	plas, err := policy.ParseFileNamed(path, string(src))
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	return plas
}

// fixtureCatalog registers the workload fixture tables every
// catalog-based corpus case runs against.
func fixtureCatalog() *sql.Catalog {
	cat := sql.NewCatalog()
	for _, tb := range []*relation.Table{
		workload.PrescriptionsFixture(),
		workload.DrugCostFixture(),
		workload.FamilyDoctorFixture(),
	} {
		cat.Register(tb)
	}
	return cat
}

func fixturePipeline() *etl.Pipeline {
	hosp := etl.NewSource("hospital", "hospital", workload.PrescriptionsFixture())
	fam := etl.NewSource("familydoctors", "familydoctors", workload.FamilyDoctorFixture())
	return &etl.Pipeline{Name: "fixture", Steps: []etl.Step{
		etl.NewExtract("ext-prescriptions", hosp, "prescriptions", ""),
		etl.NewExtract("ext-familydoctor", fam, "familydoctor", ""),
		etl.NewJoin("join-fd", "prescriptions", "familydoctor",
			relation.Eq(relation.ColRefExpr("l.patient"), relation.ColRefExpr("r.patient")),
			relation.InnerJoin, "rx_fd"),
	}}
}

// corpusPass builds the pass for one corpus file: the parsed PLAs plus
// exactly the engine state the target analyzer needs.
func corpusPass(t *testing.T, name string) *lint.Pass {
	t.Helper()
	p := &lint.Pass{PLAs: parseTestdata(t, name)}
	switch strings.TrimSuffix(name, ".pla") {
	case "pl001", "pl002":
		// Agreement-only analyses: no engine state at all.
	case "pl003", "pl007":
		p.Catalog = fixtureCatalog()
	case "pl004":
		p.Catalog = fixtureCatalog()
		p.Reports = []*report.Definition{{
			ID: "rx-list", Title: "Prescription list",
			Query:   "SELECT patient, drug FROM prescriptions",
			Roles:   []string{"analyst"},
			Purpose: "quality",
		}}
	case "pl005":
		p.Catalog = fixtureCatalog()
		p.Reports = []*report.Definition{{
			ID: "drug-consumption", Title: "Drug consumption",
			Query: "SELECT drug, COUNT(*) AS consumption FROM prescriptions GROUP BY drug",
		}}
		p.Assign = map[string]string{"drug-consumption": "meta-1"}
	case "pl006":
		p.Catalog = fixtureCatalog()
		p.Pipelines = []*etl.Pipeline{fixturePipeline()}
	default:
		t.Fatalf("no pass fixture for %s", name)
	}
	return p
}

var corpus = []string{
	"pl001.pla", "pl002.pla", "pl003.pla", "pl004.pla",
	"pl005.pla", "pl006.pla", "pl007.pla",
}

// TestGoldenCorpus proves each analyzer detects its finding class, with
// byte-identical output across independent runs.
func TestGoldenCorpus(t *testing.T) {
	for _, name := range corpus {
		t.Run(name, func(t *testing.T) {
			code := strings.ToUpper(strings.TrimSuffix(name, ".pla"))
			var runs [2]string
			for i := range runs {
				fs := lint.Run(corpusPass(t, name))
				var b bytes.Buffer
				if err := lint.WriteText(&b, fs); err != nil {
					t.Fatal(err)
				}
				runs[i] = b.String()
				if i == 0 {
					hit := false
					for _, f := range fs {
						if f.Code == code {
							hit = true
							break
						}
					}
					if !hit {
						t.Errorf("no %s finding emitted:\n%s", code, b.String())
					}
				}
			}
			if runs[0] != runs[1] {
				t.Fatalf("non-deterministic output:\n--- run 1 ---\n%s--- run 2 ---\n%s", runs[0], runs[1])
			}
			goldenPath := filepath.Join("testdata", strings.TrimSuffix(name, ".pla")+".golden")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(runs[0]), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatal(err)
			}
			if runs[0] != string(want) {
				t.Errorf("output differs from %s:\n--- got ---\n%s--- want ---\n%s", goldenPath, runs[0], want)
			}
		})
	}
}

// TestGoldenJSON pins the machine-readable output format.
func TestGoldenJSON(t *testing.T) {
	fs := lint.Run(corpusPass(t, "pl001.pla"))
	var b bytes.Buffer
	if err := lint.WriteJSON(&b, fs); err != nil {
		t.Fatal(err)
	}
	goldenPath := filepath.Join("testdata", "pl001.json.golden")
	if *update {
		if err := os.WriteFile(goldenPath, b.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if b.String() != string(want) {
		t.Errorf("JSON output differs:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

// TestWriteJSONEmpty: a clean run must still emit a JSON array.
func TestWriteJSONEmpty(t *testing.T) {
	var b bytes.Buffer
	if err := lint.WriteJSON(&b, nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(b.String()) != "[]" {
		t.Errorf("empty findings = %q, want []", b.String())
	}
}

// TestApplyFixesDeadRules: applying the suggested fixes removes the dead
// rules and the re-lint comes back clean.
func TestApplyFixesDeadRules(t *testing.T) {
	plas := parseTestdata(t, "pl001.pla")
	fs := lint.Run(&lint.Pass{PLAs: plas})
	fixes := lint.Fixes(fs)
	if len(fixes) != 2 {
		t.Fatalf("fixes = %d, want 2 (%v)", len(fixes), fs)
	}
	if n := lint.ApplyFixes(plas, fixes); n != 2 {
		t.Fatalf("applied = %d, want 2", n)
	}
	if len(plas[0].Access) != 2 {
		t.Errorf("access rules after fix = %d, want 2", len(plas[0].Access))
	}
	if fs := lint.Run(&lint.Pass{PLAs: plas}); len(fs) != 0 {
		t.Errorf("findings after fix: %v", fs)
	}
	// The fixed agreement re-prints as valid DSL.
	if _, err := policy.ParseFile(lint.FormatPLAs(plas)); err != nil {
		t.Errorf("fixed output does not re-parse: %v", err)
	}
}

// TestApplyFixesThresholds: raising the looser thresholds to the source
// minimum clears every PL005 finding.
func TestApplyFixesThresholds(t *testing.T) {
	p := corpusPass(t, "pl005.pla")
	fs := lint.Run(p)
	if n := lint.ApplyFixes(p.PLAs, lint.Fixes(fs)); n == 0 {
		t.Fatal("no threshold fixes applied")
	}
	after := lint.Run(&lint.Pass{
		PLAs: p.PLAs, Catalog: p.Catalog, Reports: p.Reports, Assign: p.Assign,
	})
	for _, f := range after {
		if f.Code == "PL005" {
			t.Errorf("PL005 finding survived fixing: %s", f)
		}
	}
}

// TestShippedPoliciesClean: every PLA document shipped in the repo lints
// clean on its own.
func TestShippedPoliciesClean(t *testing.T) {
	paths := []string{
		"../../docs/sample.pla",
		"../../examples/quickstart/policy.pla",
		"../../examples/anonymization/policy.pla",
		"../../examples/audit/policy.pla",
	}
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		plas, err := policy.ParseFileNamed(path, string(src))
		if err != nil {
			t.Fatalf("parse %s: %v", path, err)
		}
		if fs := lint.Run(&lint.Pass{PLAs: plas}); len(fs) != 0 {
			var b bytes.Buffer
			_ = lint.WriteText(&b, fs)
			t.Errorf("%s has findings:\n%s", path, b.String())
		}
	}
}

// TestHealthcareEngineLint: the full scenario deployment carries no
// error-severity findings, and the intentionally non-aggregated
// patient-activity report is flagged as always blocked.
func TestHealthcareEngineLint(t *testing.T) {
	cfg := workload.DefaultConfig(1)
	cfg.Prescriptions = 200
	cfg.Patients = 20
	e, _, err := core.BuildHealthcareEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fs := e.Lint()
	if max, ok := lint.MaxSeverity(fs); ok && max >= lint.SevError {
		var b bytes.Buffer
		_ = lint.WriteText(&b, lint.Filter(fs, lint.SevError))
		t.Errorf("scenario has error findings:\n%s", b.String())
	}
	found := false
	for _, f := range fs {
		if f.Code == "PL004" && strings.Contains(f.Message, "patient-activity") {
			found = true
		}
	}
	if !found {
		t.Errorf("always-blocked patient-activity report not flagged; findings: %v", fs)
	}
	// Linting is observable.
	snap := e.Obs().Snapshot()
	if snap.Counters["lint.runs"] == 0 {
		t.Error("lint.runs counter not incremented")
	}
}

// TestSeverityFilterAndMax covers the gating helpers the CLI exits on.
func TestSeverityFilterAndMax(t *testing.T) {
	fs := lint.Run(corpusPass(t, "pl001.pla"))
	warnUp := lint.Filter(fs, lint.SevWarning)
	for _, f := range warnUp {
		if f.Severity < lint.SevWarning {
			t.Errorf("filter leaked %s", f)
		}
	}
	if len(warnUp) == 0 || len(warnUp) == len(fs) {
		t.Errorf("filter should drop the info finding: %d of %d kept", len(warnUp), len(fs))
	}
	if _, ok := lint.MaxSeverity(nil); ok {
		t.Error("MaxSeverity(nil) reported ok")
	}
	if s, err := lint.ParseSeverity("error"); err != nil || s != lint.SevError {
		t.Errorf("ParseSeverity(error) = %v, %v", s, err)
	}
	if _, err := lint.ParseSeverity("fatal"); err == nil {
		t.Error("ParseSeverity(fatal) should fail")
	}
}

// TestAnalyzerRegistry: all seven analyzers are registered under their
// documented codes, sorted.
func TestAnalyzerRegistry(t *testing.T) {
	want := []string{"PL001", "PL002", "PL003", "PL004", "PL005", "PL006", "PL007"}
	as := lint.Analyzers()
	if len(as) != len(want) {
		t.Fatalf("analyzers = %d, want %d", len(as), len(want))
	}
	for i, a := range as {
		if a.Code() != want[i] {
			t.Errorf("analyzer %d = %s, want %s", i, a.Code(), want[i])
		}
		if a.Name() == "" || a.Doc() == "" {
			t.Errorf("analyzer %s missing name or doc", a.Code())
		}
	}
}
