package attack

import (
	"testing"

	"plabi/internal/anon"
	"plabi/internal/relation"
	"plabi/internal/workload"
)

func TestGeneralizedMatch(t *testing.T) {
	cases := []struct {
		released relation.Value
		raw      relation.Value
		want     bool
	}{
		{relation.Str("*"), relation.Str("anything"), true},
		{relation.Str("38122"), relation.Str("38122"), true},
		{relation.Str("38122"), relation.Str("38123"), false},
		{relation.Str("381**"), relation.Str("38122"), true},
		{relation.Str("381**"), relation.Str("38222"), false},
		{relation.Str("[20-30)"), relation.Int(25), true},
		{relation.Str("[20-30)"), relation.Int(30), false},
		{relation.Str("[20-30]"), relation.Int(30), true},
		{relation.Str("[20-30)"), relation.Int(19), false},
		{relation.Str("{a,b,c}"), relation.Str("b"), true},
		{relation.Str("{a,b,c}"), relation.Str("d"), false},
		{relation.Int(25), relation.Int(25), true},
		{relation.Int(25), relation.Int(26), false},
		{relation.Str("25"), relation.Int(25), true},
		{relation.Null(), relation.Int(25), false},
		{relation.Str("[x-y]"), relation.Int(1), false}, // unparseable range
	}
	for _, c := range cases {
		if got := GeneralizedMatch(c.released, c.raw); got != c.want {
			t.Errorf("GeneralizedMatch(%v, %v) = %v, want %v", c.released, c.raw, got, c.want)
		}
	}
}

func TestRawReleaseFullyReidentifiable(t *testing.T) {
	ds, err := workload.Generate(workload.DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	l := Linkage{
		Released: ds.Residents, External: ds.Residents,
		QI: []string{"age", "zip"}, IdentityCol: "patient",
	}
	res, err := Run(l)
	if err != nil {
		t.Fatal(err)
	}
	// With 500 residents over ~80 ages × 200 zips, most (age, zip)
	// combinations are unique: the raw release is overwhelmingly
	// re-identifiable.
	if res.ReidentRate < 0.8 {
		t.Errorf("raw release should be largely re-identifiable: %v", res)
	}
}

func TestKAnonymizedReleaseDefeatsLinkage(t *testing.T) {
	ds, err := workload.Generate(workload.DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 5, 10} {
		released, _, err := anon.KAnonymize(ds.Residents, k, []string{"age", "zip"})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Linkage{
			Released: released, External: ds.Residents,
			QI: []string{"age", "zip"}, IdentityCol: "patient",
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Reidentified != 0 {
			t.Errorf("k=%d: %d rows re-identified (%v)", k, res.Reidentified, res)
		}
		// Every released row's candidate set covers its whole class.
		if res.MinCandidates < k {
			t.Errorf("k=%d: min candidates %d < k", k, res.MinCandidates)
		}
	}
}

func TestAttributeDisclosureStoppedByLDiversity(t *testing.T) {
	// Homogeneous class: both members share the sensitive value — the
	// attacker learns it for every candidate without re-identifying
	// anyone.
	released := relation.NewBase("released", relation.NewSchema(
		relation.Col("age", relation.TString),
		relation.Col("disease", relation.TString),
	))
	released.AppendVals(relation.Str("[20-30)"), relation.Str("HIV"))
	released.AppendVals(relation.Str("[20-30)"), relation.Str("HIV"))
	external := relation.NewBase("registry", relation.NewSchema(
		relation.Col("patient", relation.TString),
		relation.Col("age", relation.TInt),
	))
	external.AppendVals(relation.Str("Alice"), relation.Int(22))
	external.AppendVals(relation.Str("Bob"), relation.Int(27))

	res, err := Run(Linkage{
		Released: released, External: external,
		QI: []string{"age"}, IdentityCol: "patient", SensitiveCol: "disease",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reidentified != 0 {
		t.Errorf("nobody should be re-identified: %v", res)
	}
	if res.AttributeDisclosed != 2 || res.AttributeRate != 1 {
		t.Errorf("homogeneity should disclose both: %v", res)
	}

	// A 2-diverse class does not disclose.
	released.Rows[1][1] = relation.Str("flu")
	res, err = Run(Linkage{
		Released: released, External: external,
		QI: []string{"age"}, IdentityCol: "patient", SensitiveCol: "disease",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AttributeDisclosed != 0 {
		t.Errorf("diverse class should not disclose: %v", res)
	}
}

func TestRunValidation(t *testing.T) {
	ds, err := workload.Generate(workload.DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(Linkage{Released: ds.Residents, External: ds.Residents,
		QI: []string{"ghost"}, IdentityCol: "patient"}); err == nil {
		t.Error("bad QI must fail")
	}
	if _, err := Run(Linkage{Released: ds.Residents, External: ds.Residents,
		QI: []string{"age"}, IdentityCol: "ghost"}); err == nil {
		t.Error("bad identity column must fail")
	}
	if _, err := Run(Linkage{Released: ds.Residents, External: ds.Residents,
		QI: []string{"age"}, IdentityCol: "patient", SensitiveCol: "ghost"}); err == nil {
		t.Error("bad sensitive column must fail")
	}
}
