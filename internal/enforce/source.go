package enforce

import (
	"context"
	"fmt"
	"strings"
	"time"

	"plabi/internal/anon"
	"plabi/internal/fault"
	"plabi/internal/metadata"
	"plabi/internal/obs"
	"plabi/internal/policy"
	"plabi/internal/relation"
)

// SourceEnforcer implements the paper's Fig. 2a data filter/anonymization
// box: before a source's data becomes BI-accessible, row filters, per-row
// consent metadata, per-attribute anonymization, and table-level release
// (k-anonymity / l-diversity) requirements are applied.
type SourceEnforcer struct {
	Registry *policy.Registry
	// Metadata optionally supplies per-row consent (Fig. 2b Policies and
	// intensional associations). Keys of the form "Show<Column>" mask
	// that column on rows where the value is boolean false.
	Metadata *metadata.Store
	// Hierarchies resolves generalize rules; defaults are used when nil.
	Hierarchies anon.HierarchySet
	// PseudonymKey keys the pseudonymizer.
	PseudonymKey []byte
	// PerturbSeed seeds perturbation noise.
	PerturbSeed int64
	// ConsentAliases maps consent-key suffixes to column names when they
	// differ (e.g. the paper's "ShowName" governs the "patient" column).
	ConsentAliases map[string]string
	// Now is the reference date for retention enforcement; the zero value
	// disables retention (useful for deterministic replays).
	Now time.Time
	// Metrics, when non-nil, receives release timings and intervention
	// counters (release.* names).
	Metrics *obs.Metrics
	// RetentionColumns maps a table name to the date column its retention
	// window is measured on; tables not listed default to a column named
	// "date" when present.
	RetentionColumns map[string]string
	// Faults, when non-nil, is consulted at the release.source site before
	// any rows are released, so chaos schedules cover source releases: an
	// injected failure degrades into a typed error and no partially
	// anonymized table ever becomes BI-accessible.
	Faults *fault.Injector
}

// ReleaseReport summarizes one source release.
type ReleaseReport struct {
	RowsIn         int
	RowsFiltered   int // removed by PLA row filters
	CellsMasked    int // blanked by consent metadata
	ColumnsAnon    []string
	RowsSuppressed int // removed by k-anonymity / l-diversity
	KAnonStats     anon.Stats
	Decisions      []Decision
}

// MaskValue is the placeholder released in place of a masked cell.
var MaskValue = relation.Str("***")

// Release produces the BI-accessible version of a source table under its
// source-level PLAs.
func (e *SourceEnforcer) Release(t *relation.Table) (*relation.Table, *ReleaseReport, error) {
	start := time.Now()
	if err := e.Faults.Hit(context.Background(), fault.SiteReleaseSource); err != nil {
		return nil, nil, fmt.Errorf("enforce: release %s: %w", t.Name, err)
	}
	comp := e.Registry.ForScope(policy.LevelSource, t.Name)
	rep := &ReleaseReport{RowsIn: t.NumRows()}
	cur := t

	// 1. Row filters (VPD-style restriction at the source).
	for _, f := range comp.Filters() {
		sel, err := relation.Select(cur, f)
		if err != nil {
			return nil, nil, fmt.Errorf("enforce: release filter: %w", err)
		}
		removed := cur.NumRows() - sel.NumRows()
		if removed > 0 {
			rep.Decisions = append(rep.Decisions, Decision{
				Outcome: SuppressRow, Rule: "row-filter", Subject: t.Name,
				Detail: fmt.Sprintf("%d rows removed by %s", removed, f),
			})
		}
		rep.RowsFiltered += removed
		cur = sel
	}

	// 2. Retention: rows older than the strictest agreed window (and
	// rows whose age is unknown) are not released.
	if days := comp.Retention(); days > 0 && !e.Now.IsZero() {
		col := e.retentionColumn(t)
		if ci := cur.Schema.Index(col); ci >= 0 {
			cutoff := relation.Date(e.Now.AddDate(0, 0, -days))
			kept, err := relation.Select(cur,
				relation.Bin(relation.OpGe, relation.ColRefExpr(col), relation.Lit(cutoff)))
			if err != nil {
				return nil, nil, fmt.Errorf("enforce: retention: %w", err)
			}
			removed := cur.NumRows() - kept.NumRows()
			if removed > 0 {
				rep.RowsFiltered += removed
				rep.Decisions = append(rep.Decisions, Decision{
					Outcome: SuppressRow, Rule: "retention", Subject: t.Name,
					Detail: fmt.Sprintf("%d rows older than %d days (reference %s)",
						removed, days, e.Now.Format(relation.DateLayout)),
				})
			}
			cur = kept
		}
	}

	// 3. Per-row consent metadata: Show<Column>=false masks that cell.
	if e.Metadata != nil {
		masked, nMasked, err := e.applyConsent(cur, t.Name, rep)
		if err != nil {
			return nil, nil, err
		}
		rep.CellsMasked = nMasked
		cur = masked
	}

	// 4. Per-attribute anonymization.
	pseudo := anon.NewPseudonymizer(e.pseudoKey())
	for _, rule := range comp.AnonymizeRules() {
		if cur.Schema.Index(rule.Attribute) < 0 {
			continue
		}
		var err error
		switch rule.Method {
		case policy.AnonSuppress:
			cur, err = anon.SuppressColumn(cur, rule.Attribute)
		case policy.AnonPseudonym:
			cur, err = pseudo.PseudonymizeColumn(cur, rule.Attribute)
		case policy.AnonGeneralize:
			cur, err = anon.GeneralizeColumn(cur, rule.Attribute, e.hier().For(rule.Attribute), rule.Param)
		case policy.AnonPerturb:
			pct := rule.Param
			if pct <= 0 {
				pct = 10
			}
			cur, err = anon.PerturbColumn(cur, rule.Attribute, pct, e.PerturbSeed)
		}
		if err != nil {
			return nil, nil, fmt.Errorf("enforce: anonymize %s: %w", rule.Attribute, err)
		}
		rep.ColumnsAnon = append(rep.ColumnsAnon, rule.Attribute)
		rep.Decisions = append(rep.Decisions, Decision{
			Outcome: Mask, Rule: "anonymize", Subject: rule.Attribute,
			Detail: rule.Method.String(),
		})
	}

	// 5. Table-level release requirements (k-anonymity, l-diversity).
	for _, rule := range comp.ReleaseRules() {
		quasi := presentColumns(cur, rule.Quasi)
		if len(quasi) == 0 {
			continue
		}
		anonT, stats, err := anon.KAnonymize(cur, rule.K, quasi)
		if err != nil {
			return nil, nil, fmt.Errorf("enforce: k-anonymize: %w", err)
		}
		rep.KAnonStats = stats
		rep.RowsSuppressed += stats.Suppressed
		cur = anonT
		if rule.L > 1 && cur.Schema.Index(rule.Sensitive) >= 0 {
			ld, suppressed, err := anon.EnforceLDiversity(cur, rule.L, quasi, rule.Sensitive)
			if err != nil {
				return nil, nil, fmt.Errorf("enforce: l-diversity: %w", err)
			}
			rep.RowsSuppressed += suppressed
			cur = ld
		}
		rep.Decisions = append(rep.Decisions, Decision{
			Outcome: Mask, Rule: "release-anonymity", Subject: t.Name,
			Detail: fmt.Sprintf("k=%d quasi=%v l=%d suppressed=%d", rule.K, quasi, rule.L, rep.RowsSuppressed),
		})
	}

	out := cur.Clone()
	out.Name = t.Name
	e.Metrics.Histogram("release.duration").Observe(time.Since(start))
	e.Metrics.Counter("release.rows.in").Add(uint64(rep.RowsIn))
	e.Metrics.Counter("release.rows.filtered").Add(uint64(rep.RowsFiltered))
	e.Metrics.Counter("release.rows.suppressed").Add(uint64(rep.RowsSuppressed))
	e.Metrics.Counter("release.cells.masked").Add(uint64(rep.CellsMasked))
	e.Metrics.Counter("release.columns.anonymized").Add(uint64(len(rep.ColumnsAnon)))
	return out, rep, nil
}

// applyConsent masks cells whose per-row metadata carries
// Show<Column>=false (Fig. 2b).
func (e *SourceEnforcer) applyConsent(t *relation.Table, originalName string, rep *ReleaseReport) (*relation.Table, int, error) {
	out := t.Clone()
	out.Name = originalName
	masked := 0
	// Pre-compute the columns any Show* key could refer to.
	for ri := range out.Rows {
		tags, err := e.Metadata.RowMetadata(out, ri)
		if err != nil {
			return nil, 0, fmt.Errorf("enforce: consent metadata: %w", err)
		}
		for _, tag := range tags {
			key := strings.ToLower(tag.Key)
			if !strings.HasPrefix(key, "show") || tag.Value.Kind != relation.TBool || tag.Value.B {
				continue
			}
			col := key[len("show"):]
			if alias, ok := e.ConsentAliases[col]; ok {
				col = alias
			}
			ci := out.Schema.Index(col)
			if ci < 0 {
				continue
			}
			if out.Rows[ri][ci].Equal(MaskValue) {
				continue
			}
			out.Rows[ri][ci] = MaskValue
			masked++
			rep.Decisions = append(rep.Decisions, Decision{
				Outcome: Mask, Rule: "consent-metadata",
				Subject: fmt.Sprintf("%s[%d].%s", originalName, ri, col),
				Detail:  tag.Source,
			})
		}
	}
	// Masked columns become strings.
	for ci := range out.Schema.Columns {
		for ri := range out.Rows {
			if out.Rows[ri][ci].Equal(MaskValue) {
				out.Schema.Columns[ci].Type = relation.TString
				break
			}
		}
	}
	return out, masked, nil
}

func (e *SourceEnforcer) hier() anon.HierarchySet {
	if e.Hierarchies != nil {
		return e.Hierarchies
	}
	return anon.DefaultHierarchies()
}

func (e *SourceEnforcer) pseudoKey() []byte {
	if len(e.PseudonymKey) > 0 {
		return e.PseudonymKey
	}
	return []byte("plabi-default-pseudonym-key")
}

// retentionColumn resolves the date column retention applies to.
func (e *SourceEnforcer) retentionColumn(t *relation.Table) string {
	if col, ok := e.RetentionColumns[strings.ToLower(t.Name)]; ok {
		return col
	}
	return "date"
}

func presentColumns(t *relation.Table, cols []string) []string {
	var out []string
	for _, c := range cols {
		if t.Schema.Index(c) >= 0 {
			out = append(out, c)
		}
	}
	return out
}
