package relation

import (
	"fmt"
	"strings"
)

// This file holds the incremental-refresh kernel: a retained GroupBy
// accumulator that re-emits after absorbing appended rows, and the
// copy-on-write row helpers (slice, concat, splice) the ETL delta
// propagation composes per-step outputs from. None of them ever mutate
// an input table — concurrent renders keep reading the old pointers
// while a delta is being applied.

// GroupByState is a retained row-at-a-time GroupBy accumulator. It is
// the core behind groupByStream (the one-shot reference path) and the
// incremental-aggregate path of the ETL delta propagation: feed it rows
// with Add/AddTable, then Result emits the grouped table. After an
// append-only delta, feeding only the new rows and re-emitting is
// byte-identical to grouping the whole refreshed input from scratch —
// group order is first-seen, and float SUM/AVG accumulate in the same
// row order either way.
type GroupByState struct {
	template *Table // schema, name and provenance donor; never mutated
	keys     []string
	aggs     []AggSpec
	keyIdx   []int
	aggIdx   []int // -1 marks COUNT(*)
	groups   map[string]*gbGroup
	order    []string
	srcRows  int
}

type gbGroup struct {
	key     Row
	states  []*aggState
	lineage LineageSet
	members int
}

// NewGroupByState validates the keys and aggregates against t's schema
// and returns an empty accumulator. t supplies schema, name and
// provenance only; rows come from Add/AddTable.
func NewGroupByState(t *Table, keys []string, aggs []AggSpec) (*GroupByState, error) {
	keyIdx := make([]int, len(keys))
	for i, k := range keys {
		idx := t.Schema.Index(k)
		if idx < 0 {
			return nil, fmt.Errorf("relation: group key %q not in %s", k, t.Schema)
		}
		keyIdx[i] = idx
	}
	aggIdx := make([]int, len(aggs))
	for i, a := range aggs {
		if a.Col == "" {
			if a.Kind != AggCount {
				return nil, fmt.Errorf("relation: aggregate %s requires a column", a.Kind)
			}
			aggIdx[i] = -1
			continue
		}
		idx := t.Schema.Index(a.Col)
		if idx < 0 {
			return nil, fmt.Errorf("relation: aggregate column %q not in %s", a.Col, t.Schema)
		}
		aggIdx[i] = idx
	}
	return &GroupByState{
		template: t,
		keys:     keys,
		aggs:     aggs,
		keyIdx:   keyIdx,
		aggIdx:   aggIdx,
		groups:   map[string]*gbGroup{},
	}, nil
}

// Add absorbs one input row with its lineage.
func (s *GroupByState) Add(r Row, lin LineageSet) {
	s.srcRows++
	var kb strings.Builder
	keyVals := make(Row, len(s.keyIdx))
	for i, ki := range s.keyIdx {
		keyVals[i] = r[ki]
		kb.WriteString(r[ki].Key())
		kb.WriteByte('|')
	}
	gk := kb.String()
	g, ok := s.groups[gk]
	if !ok {
		g = &gbGroup{key: keyVals, states: make([]*aggState, len(s.aggs))}
		for i := range s.aggs {
			g.states[i] = &aggState{allInt: true, distinct: map[string]bool{}}
		}
		s.groups[gk] = g
		s.order = append(s.order, gk)
	}
	g.members++
	// Accumulate raw refs; normalized once per group on emit (an
	// incremental sorted merge is quadratic in the group size).
	g.lineage = append(g.lineage, lin...)
	for i, a := range s.aggs {
		st := g.states[i]
		if s.aggIdx[i] < 0 { // COUNT(*)
			st.n++
			continue
		}
		v := r[s.aggIdx[i]]
		if v.IsNull() {
			continue
		}
		st.n++
		switch a.Kind {
		case AggSum, AggAvg:
			if v.Kind == TInt {
				st.sumInt += v.I
				st.sum += float64(v.I)
			} else if f, ok := v.AsFloat(); ok {
				st.allInt = false
				st.sum += f
			}
		case AggMin:
			if st.min.IsNull() {
				st.min = v
			} else if c, ok := v.Compare(st.min); ok && c < 0 {
				st.min = v
			}
		case AggMax:
			if st.max.IsNull() {
				st.max = v
			} else if c, ok := v.Compare(st.max); ok && c > 0 {
				st.max = v
			}
		case AggCountDistinct:
			st.distinct[v.Key()] = true
		}
	}
}

// AddTable absorbs t's rows starting at index from (0 feeds the whole
// table), carrying each row's lineage.
func (s *GroupByState) AddTable(t *Table, from int) error {
	m, err := t.Materialize()
	if err != nil {
		return err
	}
	for ri := from; ri < len(m.Rows); ri++ {
		s.Add(m.Rows[ri], m.RowLineage(ri))
	}
	return nil
}

// SourceRows returns the number of input rows absorbed so far. The ETL
// layer compares it with the refreshed input's length to detect that a
// rolled-back delta left the state behind the table, forcing a rebuild.
func (s *GroupByState) SourceRows() int { return s.srcRows }

// Result emits the grouped table. The emitted table is independent of
// the accumulator: further Adds followed by another Result never mutate
// a previously emitted table.
func (s *GroupByState) Result() *Table {
	t := s.template
	out := &Table{Name: t.Name + "_grp"}
	cols := make([]Column, 0, len(s.keys)+len(s.aggs))
	out.ColOrigin = make([]ColRefSet, 0, cap(cols))
	for i, k := range s.keys {
		cols = append(cols, Column{Name: baseName(k), Type: t.Schema.Columns[s.keyIdx[i]].Type})
		out.ColOrigin = append(out.ColOrigin, t.ColumnOrigin(s.keyIdx[i]))
	}
	for i, a := range s.aggs {
		cols = append(cols, Column{Name: a.outName(), Type: a.outType(t.Schema)})
		if s.aggIdx[i] >= 0 {
			out.ColOrigin = append(out.ColOrigin, t.ColumnOrigin(s.aggIdx[i]))
		} else {
			// COUNT(*) derives from the whole row; attribute it to all
			// input columns so provenance over-approximates rather than
			// under-approximates.
			out.ColOrigin = append(out.ColOrigin, t.AllColumnOrigins())
		}
	}
	out.Schema = &Schema{Columns: cols}

	for _, gk := range s.order {
		g := s.groups[gk]
		nr := make(Row, 0, len(cols))
		nr = append(nr, g.key...)
		for i, a := range s.aggs {
			nr = append(nr, g.states[i].result(a.Kind))
		}
		out.Rows = append(out.Rows, nr)
		// Copy before normalizing: the group keeps accumulating raw refs
		// across emits, and the emitted table must not alias them.
		lin := append(LineageSet(nil), g.lineage...)
		out.Lineage = append(out.Lineage, lin.normalize())
	}
	return out
}

// SliceRows builds a derived in-memory table holding exactly t's rows at
// the given indices, in order, with explicit row lineage and t's column
// origins. Operators applied to the slice (mapCol, Rename+Join) produce
// rows and provenance byte-identical to the same operator applied to the
// full table at those positions — the basis for row-wise delta splicing.
func SliceRows(t *Table, idx []int) (*Table, error) {
	m, err := t.Materialize()
	if err != nil {
		return nil, err
	}
	out := t.derived(t.Name)
	out.Rows = make([]Row, 0, len(idx))
	out.Lineage = make([]LineageSet, 0, len(idx))
	for _, ri := range idx {
		if ri < 0 || ri >= len(m.Rows) {
			return nil, fmt.Errorf("relation: slice row %d out of range [0,%d)", ri, len(m.Rows))
		}
		out.Rows = append(out.Rows, m.Rows[ri])
		out.Lineage = append(out.Lineage, m.RowLineage(ri))
	}
	return out, nil
}

// ConcatRows returns a derived table with old's rows followed by tail's,
// sharing row storage with both inputs (copy-on-write: neither is
// mutated). Schemas must agree.
func ConcatRows(old, tail *Table) (*Table, error) {
	om, err := old.Materialize()
	if err != nil {
		return nil, err
	}
	tm, err := tail.Materialize()
	if err != nil {
		return nil, err
	}
	if !om.Schema.Equal(tm.Schema) {
		return nil, fmt.Errorf("relation: concat schema mismatch (%s vs %s)", om.Schema, tm.Schema)
	}
	out := old.derived(old.Name)
	out.Rows = make([]Row, 0, len(om.Rows)+len(tm.Rows))
	out.Rows = append(out.Rows, om.Rows...)
	out.Rows = append(out.Rows, tm.Rows...)
	out.Lineage = make([]LineageSet, 0, cap(out.Rows))
	for i := range om.Rows {
		out.Lineage = append(out.Lineage, om.RowLineage(i))
	}
	for i := range tm.Rows {
		out.Lineage = append(out.Lineage, tm.RowLineage(i))
	}
	return out, nil
}

// SpliceRows returns a derived copy of old with the rows at idx replaced
// positionally by repl's rows (idx[i] is replaced by repl row i),
// copy-on-write: old is never mutated, untouched rows share storage.
func SpliceRows(old *Table, idx []int, repl *Table) (*Table, error) {
	om, err := old.Materialize()
	if err != nil {
		return nil, err
	}
	rm, err := repl.Materialize()
	if err != nil {
		return nil, err
	}
	if len(idx) != len(rm.Rows) {
		return nil, fmt.Errorf("relation: splice arity mismatch (%d indices, %d rows)", len(idx), len(rm.Rows))
	}
	if !om.Schema.Equal(rm.Schema) {
		return nil, fmt.Errorf("relation: splice schema mismatch (%s vs %s)", om.Schema, rm.Schema)
	}
	out := old.derived(old.Name)
	out.Rows = make([]Row, len(om.Rows))
	copy(out.Rows, om.Rows)
	out.Lineage = make([]LineageSet, len(om.Rows))
	for i := range om.Rows {
		out.Lineage[i] = om.RowLineage(i)
	}
	for i, ri := range idx {
		if ri < 0 || ri >= len(out.Rows) {
			return nil, fmt.Errorf("relation: splice row %d out of range [0,%d)", ri, len(out.Rows))
		}
		out.Rows[ri] = rm.Rows[i]
		out.Lineage[ri] = rm.RowLineage(i)
	}
	return out, nil
}
