package enforce

import (
	"fmt"
	"sync"
	"testing"
)

func TestPlanCacheGenerationCheck(t *testing.T) {
	c := newPlanCache(64)
	k := planKey{report: "r", role: "analyst", purpose: "quality"}
	at := gens{version: 1, policy: 2, catalog: 3, scope: 4}

	if _, ok := c.get(k, at); ok {
		t.Fatal("empty cache returned a plan")
	}
	c.put(k, &renderPlan{at: at})
	if _, ok := c.get(k, at); !ok {
		t.Fatal("stored plan not returned for matching generations")
	}
	// Any generation moving invalidates.
	for i, stale := range []gens{
		{version: 2, policy: 2, catalog: 3, scope: 4},
		{version: 1, policy: 9, catalog: 3, scope: 4},
		{version: 1, policy: 2, catalog: 9, scope: 4},
		{version: 1, policy: 2, catalog: 3, scope: 9},
	} {
		c.put(k, &renderPlan{at: at})
		if _, ok := c.get(k, stale); ok {
			t.Fatalf("case %d: stale plan served", i)
		}
	}
	s := c.stats()
	if s.Invalidations != 4 {
		t.Errorf("invalidations = %d, want 4", s.Invalidations)
	}
	if s.Hits != 1 {
		t.Errorf("hits = %d, want 1", s.Hits)
	}
}

func TestPlanCacheBounded(t *testing.T) {
	c := newPlanCache(32) // 2 per shard
	for i := 0; i < 500; i++ {
		k := planKey{report: fmt.Sprintf("r%d", i), role: "a", purpose: "p"}
		c.put(k, &renderPlan{})
	}
	if n := c.stats().Entries; n > 32 {
		t.Errorf("entries = %d, want <= 32", n)
	}
}

func TestPlanCacheConcurrent(t *testing.T) {
	c := newPlanCache(0)
	at := gens{version: 1}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := planKey{report: fmt.Sprintf("r%d", i%17), role: "a", purpose: "p"}
				if p, ok := c.get(k, at); !ok || p == nil {
					c.put(k, &renderPlan{at: at})
				}
			}
		}(w)
	}
	wg.Wait()
	s := c.stats()
	if s.Hits == 0 {
		t.Error("expected concurrent hits")
	}
	if s.Entries == 0 || s.Entries > 17 {
		t.Errorf("entries = %d, want 1..17", s.Entries)
	}
}

func TestCacheStatsHitRate(t *testing.T) {
	if r := (CacheStats{}).HitRate(); r != 0 {
		t.Errorf("empty hit rate = %v", r)
	}
	if r := (CacheStats{Hits: 3, Misses: 1}).HitRate(); r != 0.75 {
		t.Errorf("hit rate = %v, want 0.75", r)
	}
}

// TestPlanCacheRefreshRace pins the stale-eviction re-check: a get that
// sees a stale entry under the read lock must re-read under the write
// lock before evicting, because a concurrent put may have refreshed the
// entry to exactly the caller's generations. Without the re-check the
// racing get deletes the freshly refreshed plan, and every later lookup
// pays a redundant rebuild. Run under -race.
func TestPlanCacheRefreshRace(t *testing.T) {
	k := planKey{report: "r", role: "analyst", purpose: "quality"}
	oldAt := gens{version: 1}
	newAt := gens{version: 2}
	for iter := 0; iter < 300; iter++ {
		c := newPlanCache(0)
		c.put(k, &renderPlan{at: oldAt})
		start := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				c.get(k, newAt) // may observe the stale entry mid-refresh
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			c.put(k, &renderPlan{at: newAt})
		}()
		close(start)
		wg.Wait()
		// The refresh must survive the racing stale evictions.
		if p, ok := c.get(k, newAt); !ok || p.at != newAt {
			t.Fatalf("iter %d: refreshed plan evicted by a racing get", iter)
		}
	}
}
