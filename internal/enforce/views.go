package enforce

import (
	"fmt"
	"strings"

	"plabi/internal/policy"
	"plabi/internal/sql"
)

// ViewManager implements the third source-level mechanism of §3: access
// to base tables is disallowed and consumers query per-role views
// instead, each view being the PLA-compliant rewriting of SELECT * over
// the base table ("define views on top of them with different
// permissions and operators in each one").
type ViewManager struct {
	Registry *policy.Registry
	Catalog  *sql.Catalog
}

// NewViewManager builds a view manager over the registry and catalog.
func NewViewManager(reg *policy.Registry, cat *sql.Catalog) *ViewManager {
	return &ViewManager{Registry: reg, Catalog: cat}
}

// ViewName returns the canonical per-role view name for a table.
func ViewName(table, role string) string {
	return strings.ToLower(table) + "__" + strings.ToLower(role)
}

// CreateRoleView registers the PLA-compliant view of one table for one
// role and returns its name with the decisions the view embodies. The
// view is defined, not materialized: it re-evaluates on every query, so
// new rows are covered automatically.
func (m *ViewManager) CreateRoleView(table, role, purpose string) (string, []Decision, error) {
	if _, ok := m.Catalog.Table(table); !ok {
		return "", nil, fmt.Errorf("enforce: %w %q", sql.ErrUnknownTable, table)
	}
	rw := NewQueryRewriter(m.Registry, m.Catalog)
	sel, err := sql.ParseSelect("SELECT * FROM " + table)
	if err != nil {
		return "", nil, err
	}
	rewritten, decisions, err := rw.Rewrite(sel, role, purpose)
	if err != nil {
		return "", nil, err
	}
	if rewritten == nil {
		return "", decisions, fmt.Errorf("enforce: access to %q is blocked for role %q", table, role)
	}
	name := ViewName(table, role)
	m.Catalog.RegisterView(name, rewritten)
	return name, decisions, nil
}

// CreateRoleViews registers views for every base table and returns the
// view names keyed by table. Tables whose access is blocked outright are
// reported in blocked.
func (m *ViewManager) CreateRoleViews(role, purpose string) (views map[string]string, blocked []string, err error) {
	views = map[string]string{}
	for _, table := range m.Catalog.TableNames() {
		name, _, verr := m.CreateRoleView(table, role, purpose)
		if verr != nil {
			blocked = append(blocked, table)
			continue
		}
		views[table] = name
	}
	return views, blocked, nil
}
