// Package lint is the static analyzer over the whole four-level plabi
// stack: parsed PLAs, the SQL catalog, report definitions, ETL plans and
// derived meta-reports. It proves properties about a deployment without
// executing any data flow — the paper's "test before deploy" loop (§5,
// Figs. 4–5), where meta-reports and PLAs act as test cases for the
// compliance of ETL and reporting.
//
// Analyzers are pluggable: each registers itself under a stable finding
// code (PL001…) the way go/analysis passes do, receives the shared *Pass
// and returns typed Findings. Output order is fully deterministic so runs
// are byte-identical and diffable in CI.
package lint

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"plabi/internal/policy"
)

// Severity ranks findings. Errors are provable misconfigurations (a
// conflict, a leak path, a reference to nothing); warnings are almost
// certainly mistakes that the runtime still handles restrictively; infos
// are redundancies worth cleaning up.
type Severity int

// Severity levels, least severe first.
const (
	SevInfo Severity = iota
	SevWarning
	SevError
)

var severityNames = map[Severity]string{
	SevInfo: "info", SevWarning: "warning", SevError: "error",
}

// String returns "info", "warning" or "error".
func (s Severity) String() string { return severityNames[s] }

// ParseSeverity parses a severity name.
func ParseSeverity(name string) (Severity, error) {
	for s, n := range severityNames {
		if n == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("lint: unknown severity %q (want info, warning or error)", name)
}

// Finding is one defect discovered by an analyzer.
type Finding struct {
	// Code is the stable analyzer code, e.g. "PL002".
	Code     string
	Severity Severity
	// Level is the abstraction level the finding concerns.
	Level policy.Level
	// Pos points at the offending DSL construct (zero when the finding
	// concerns an artifact with no source position, e.g. an ETL step).
	Pos policy.Pos
	// Subject is the element found defective: attribute, report id, join
	// pair, …
	Subject string
	// Message explains the defect and its runtime consequence.
	Message string
	// PLAs lists the ids of the agreements involved.
	PLAs []string
	// SuggestedFix is a machine-applicable remediation, present only when
	// applying it provably cannot weaken enforcement.
	SuggestedFix *Fix
}

// String renders the finding in the canonical single-line text form.
func (f Finding) String() string {
	pos := f.Pos.String()
	if pos == "" {
		pos = "-"
	}
	return fmt.Sprintf("%s: %s: %s: [%s] %s", pos, f.Severity, f.Code, f.Level, f.Message)
}

// Fix is a machine-applicable remediation: an edit to one rule of one
// PLA, addressed by rule kind and index within the parsed PLA.
type Fix struct {
	// Summary is the human-readable description of the edit.
	Summary string
	// PLAID names the agreement to edit.
	PLAID string
	// Kind selects the rule slice: "access" or "aggregation".
	Kind string
	// Index is the rule's position within that slice at parse time.
	Index int
	// Action is "remove" or "set-min".
	Action string
	// Value is the new threshold for "set-min".
	Value int
}

// Analyzer is one registered static pass.
type Analyzer interface {
	// Code is the stable finding code this analyzer emits ("PL003").
	Code() string
	// Name is a short slug ("schema-drift").
	Name() string
	// Doc is a one-paragraph description of what the pass proves.
	Doc() string
	// Run inspects the pass state and returns findings. Analyzers must
	// abstain (return nil) for checks whose inputs are absent — linting
	// bare PLA files carries no catalog, reports or pipelines.
	Run(p *Pass) []Finding
}

var (
	registryMu sync.RWMutex
	analyzers  = map[string]Analyzer{}
)

// Register adds an analyzer under its code. It panics on a duplicate
// code: codes are the stable public contract of the tool.
func Register(a Analyzer) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := analyzers[a.Code()]; dup {
		panic(fmt.Sprintf("lint: duplicate analyzer code %s", a.Code()))
	}
	analyzers[a.Code()] = a
}

// Analyzers returns every registered analyzer, ordered by code.
func Analyzers() []Analyzer {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]Analyzer, 0, len(analyzers))
	for _, a := range analyzers {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Code() < out[j].Code() })
	return out
}

// Run executes every registered analyzer over the pass and returns the
// findings in deterministic order. Metrics (lint.runs, lint.findings,
// lint.findings.<code>, lint.duration_ms) are emitted to p.Metrics,
// which may be nil.
func Run(p *Pass) []Finding {
	start := time.Now()
	p.prepare()
	var out []Finding
	for _, a := range Analyzers() {
		out = append(out, a.Run(p)...)
	}
	Sort(out)
	m := p.Metrics
	m.Counter("lint.runs").Inc()
	m.Counter("lint.findings").Add(uint64(len(out)))
	for _, f := range out {
		m.Counter("lint.findings." + f.Code).Inc()
	}
	m.Histogram("lint.duration_ms").Observe(time.Since(start))
	return out
}

// Sort orders findings deterministically: by code, then position, then
// subject and message.
func Sort(fs []Finding) {
	sort.SliceStable(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		if a.Pos.File != b.Pos.File {
			return a.Pos.File < b.Pos.File
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		if a.Subject != b.Subject {
			return a.Subject < b.Subject
		}
		return a.Message < b.Message
	})
}

// MaxSeverity returns the highest severity among the findings, and false
// when there are none.
func MaxSeverity(fs []Finding) (Severity, bool) {
	if len(fs) == 0 {
		return 0, false
	}
	best := fs[0].Severity
	for _, f := range fs[1:] {
		if f.Severity > best {
			best = f.Severity
		}
	}
	return best, true
}

// Filter returns the findings at or above the given severity.
func Filter(fs []Finding, min Severity) []Finding {
	var out []Finding
	for _, f := range fs {
		if f.Severity >= min {
			out = append(out, f)
		}
	}
	return out
}
