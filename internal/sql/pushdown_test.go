package sql

import (
	"fmt"
	"reflect"
	"testing"

	"plabi/internal/relation"
)

func pushdownCatalog() *Catalog {
	c := NewCatalog()
	pat := relation.NewBase("patients", relation.NewSchema(
		relation.Col("patient", relation.TString),
		relation.Col("age", relation.TInt),
		relation.Col("city", relation.TString),
	))
	pat.AppendVals(relation.Str("p1"), relation.Int(30), relation.Str("trento"))
	pat.AppendVals(relation.Str("p2"), relation.Int(41), relation.Str("rovereto"))
	pat.AppendVals(relation.Str("p3"), relation.Int(55), relation.Str("trento"))
	pat.AppendVals(relation.Str("p4"), relation.Int(17), relation.Str("bolzano"))
	c.Register(pat)

	rx := relation.NewBase("rx", relation.NewSchema(
		relation.Col("patient", relation.TString),
		relation.Col("drug", relation.TString),
		relation.Col("qty", relation.TInt),
	))
	rx.AppendVals(relation.Str("p1"), relation.Str("aspirin"), relation.Int(2))
	rx.AppendVals(relation.Str("p2"), relation.Str("ibuprofen"), relation.Int(1))
	rx.AppendVals(relation.Str("p2"), relation.Str("aspirin"), relation.Int(3))
	rx.AppendVals(relation.Str("p5"), relation.Str("aspirin"), relation.Int(9))
	c.Register(rx)
	return c
}

// runBothPlans executes the query with pushdown as wired, and again with
// the planner disabled by moving the WHERE into a HAVING-free reference:
// we simply re-run exec with a statement whose WHERE survives intact by
// marking every conjunct unsafe is not possible from outside, so instead
// the reference result is computed by the row-at-a-time executor before
// this PR: join everything, then filter. We reconstruct it with the
// relational primitives directly.
func execReference(c *Catalog, src string) (*relation.Table, error) {
	s, err := ParseSelect(src)
	if err != nil {
		return nil, err
	}
	// Reference: the pre-pushdown pipeline (join all, then WHERE), built
	// from the same primitives exec uses.
	cur, err := c.resolve(s.From.Name, map[string]bool{})
	if err != nil {
		return nil, err
	}
	cur = relation.Rename(cur, s.From.EffName())
	for _, j := range s.Joins {
		rt, err := c.resolve(j.Table.Name, map[string]bool{})
		if err != nil {
			return nil, err
		}
		rt = relation.Rename(rt, j.Table.EffName())
		cur, err = relation.Join(cur, rt, j.On, j.Kind)
		if err != nil {
			return nil, err
		}
	}
	if s.Where != nil {
		cur, err = relation.Select(cur, s.Where)
		if err != nil {
			return nil, err
		}
	}
	if len(s.GroupBy) > 0 || s.HasAggregates() {
		cur, err = execGrouped(cur, s)
	} else {
		cur, err = execProjection(cur, s)
	}
	if err != nil {
		return nil, err
	}
	if s.Distinct {
		cur = relation.Distinct(cur)
	}
	if len(s.OrderBy) > 0 {
		keys := make([]relation.SortKey, len(s.OrderBy))
		for i, o := range s.OrderBy {
			keys[i] = relation.SortKey{Col: o.Col, Desc: o.Desc}
		}
		cur, err = relation.Sort(cur, keys...)
		if err != nil {
			return nil, err
		}
	}
	if s.Limit >= 0 {
		cur = relation.Limit(cur, s.Limit)
	}
	cur.Name = "result"
	return cur, nil
}

// TestPushdownEquivalence runs join-heavy queries through the pushdown
// executor and the filter-after-join reference; results (rows, lineage,
// rendering) must be identical.
func TestPushdownEquivalence(t *testing.T) {
	c := pushdownCatalog()
	queries := []string{
		"SELECT p.patient, r.drug FROM patients p JOIN rx r ON p.patient = r.patient WHERE p.age > 20",
		"SELECT p.patient, r.drug FROM patients p JOIN rx r ON p.patient = r.patient WHERE p.age > 20 AND r.qty >= 2",
		"SELECT p.patient, r.drug FROM patients p JOIN rx r ON p.patient = r.patient WHERE p.city = 'trento' AND r.drug = 'aspirin' AND p.age < 50",
		"SELECT p.patient, r.drug FROM patients p LEFT JOIN rx r ON p.patient = r.patient WHERE p.age > 20",
		"SELECT p.patient, r.drug FROM patients p LEFT JOIN rx r ON p.patient = r.patient WHERE r.qty > 1",
		"SELECT city, COUNT(*) AS n FROM patients p JOIN rx r ON p.patient = r.patient WHERE r.drug = 'aspirin' GROUP BY city ORDER BY n DESC",
		"SELECT p.patient FROM patients p WHERE p.age > 20 AND p.city <> 'bolzano' ORDER BY patient",
		"SELECT p.patient, r.drug FROM patients p JOIN rx r ON p.patient = r.patient WHERE p.age + r.qty > 30",
	}
	for _, q := range queries {
		got, err := c.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		want, err := execReference(c, q)
		if err != nil {
			t.Fatalf("%s (reference): %v", q, err)
		}
		if got.String() != want.String() {
			t.Errorf("%s:\npushdown:\n%s\nreference:\n%s", q, got.String(), want.String())
		}
		if !reflect.DeepEqual(got.Lineage, want.Lineage) {
			t.Errorf("%s: lineage diverged", q)
		}
	}
}

// TestPushdownPlan pins which conjuncts the planner claims.
func TestPushdownPlan(t *testing.T) {
	c := pushdownCatalog()
	plan := func(src string) ([][]relation.Expr, relation.Expr) {
		s, err := ParseSelect(src)
		if err != nil {
			t.Fatalf("parse %s: %v", src, err)
		}
		inputs := []*relation.Table{}
		cur, _ := c.resolve(s.From.Name, map[string]bool{})
		inputs = append(inputs, relation.Rename(cur, s.From.EffName()))
		for _, j := range s.Joins {
			rt, _ := c.resolve(j.Table.Name, map[string]bool{})
			inputs = append(inputs, relation.Rename(rt, j.Table.EffName()))
		}
		return planPushdown(s, inputs)
	}

	// Single-relation conjuncts split to their carriers; nothing residual.
	pushed, res := plan("SELECT * FROM patients p JOIN rx r ON p.patient = r.patient WHERE p.age > 20 AND r.qty >= 2")
	if len(pushed[0]) != 1 || len(pushed[1]) != 1 || res != nil {
		t.Errorf("inner join split: pushed=%v,%v residual=%v", pushed[0], pushed[1], res)
	}

	// Cross-relation conjunct stays residual.
	pushed, res = plan("SELECT * FROM patients p JOIN rx r ON p.patient = r.patient WHERE p.age + r.qty > 30")
	if len(pushed[0]) != 0 || len(pushed[1]) != 0 || res == nil {
		t.Errorf("cross-relation conjunct should stay residual, got pushed=%v,%v", pushed[0], pushed[1])
	}

	// Right side of a LEFT JOIN must not be pre-filtered; left side may.
	pushed, res = plan("SELECT * FROM patients p LEFT JOIN rx r ON p.patient = r.patient WHERE p.age > 20 AND r.qty > 1")
	if len(pushed[0]) != 1 {
		t.Errorf("left side of LEFT JOIN should be pushable, got %v", pushed[0])
	}
	if len(pushed[1]) != 0 || res == nil {
		t.Errorf("right side of LEFT JOIN must stay residual, got pushed=%v residual=%v", pushed[1], res)
	}

	// An unsafe conjunct anywhere disables the whole pushdown (no
	// short-circuit in the reference: errors must not be suppressed).
	pushed, res = plan("SELECT * FROM patients p JOIN rx r ON p.patient = r.patient WHERE p.age > 20 AND nosuch > 1")
	if len(pushed[0]) != 0 || len(pushed[1]) != 0 || res == nil {
		t.Errorf("unsafe WHERE must disable pushdown entirely, got pushed=%v,%v", pushed[0], pushed[1])
	}
}

// TestPushdownErrorEquivalence: queries whose WHERE errors must keep
// erroring identically with the planner in place.
func TestPushdownErrorEquivalence(t *testing.T) {
	c := pushdownCatalog()
	for _, q := range []string{
		"SELECT p.patient FROM patients p JOIN rx r ON p.patient = r.patient WHERE nosuch = 1",
		"SELECT p.patient FROM patients p WHERE NOSUCHFN(p.age) > 1",
	} {
		_, err := c.Query(q)
		if err == nil {
			t.Errorf("%s: expected error, got none", q)
		}
	}
}

// TestSplitFold pins conjunct flattening and refolding order.
func TestSplitFold(t *testing.T) {
	a := relation.ColEqStr("a", "1")
	b := relation.ColEqStr("b", "2")
	d := relation.ColEqStr("d", "3")
	tree := relation.And(relation.And(a, b), d)
	parts := splitConjuncts(tree)
	if len(parts) != 3 {
		t.Fatalf("want 3 conjuncts, got %d", len(parts))
	}
	refolded := foldAnd(parts)
	if fmt.Sprint(refolded) != fmt.Sprint(tree) {
		t.Errorf("refold changed shape: %v vs %v", refolded, tree)
	}
	if foldAnd(nil) != nil {
		t.Error("foldAnd(nil) should be nil")
	}
}
