package serve

import (
	"strings"
	"testing"
	"time"
)

func validTenant(name, token string) TenantConfig {
	return TenantConfig{Name: name, Tokens: []string{token}, Scenario: "healthcare"}
}

func TestManifestValidate(t *testing.T) {
	cases := []struct {
		name string
		m    Manifest
		want string // substring of the error, "" = valid
	}{
		{"valid", Manifest{Tenants: []TenantConfig{validTenant("alpha", "t1")}}, ""},
		{"no tenants", Manifest{}, "no tenants"},
		{"bad name", Manifest{Tenants: []TenantConfig{validTenant("Alpha!", "t1")}}, "invalid name"},
		{"duplicate name", Manifest{Tenants: []TenantConfig{
			validTenant("alpha", "t1"), validTenant("alpha", "t2")}}, "duplicate tenant"},
		{"no tokens", Manifest{Tenants: []TenantConfig{{Name: "alpha", Scenario: "healthcare"}}}, "no tokens"},
		{"empty token", Manifest{Tenants: []TenantConfig{{Name: "alpha", Tokens: []string{""}}}}, "empty token"},
		{"shared token", Manifest{Tenants: []TenantConfig{
			validTenant("alpha", "t1"), validTenant("beta", "t1")}}, "token shared"},
		{"admin collision", Manifest{AdminTokens: []string{"t1"},
			Tenants: []TenantConfig{validTenant("alpha", "t1")}}, "admin token"},
		{"unknown scenario", Manifest{Tenants: []TenantConfig{
			{Name: "alpha", Tokens: []string{"t1"}, Scenario: "finance"}}}, "unknown scenario"},
		{"negative sizing", Manifest{Tenants: []TenantConfig{
			{Name: "alpha", Tokens: []string{"t1"}, Prescriptions: -1}}}, "negative workload"},
		{"negative rate", Manifest{Tenants: []TenantConfig{
			{Name: "alpha", Tokens: []string{"t1"}, RateRPS: -2}}}, "negative rate"},
	}
	for _, tc := range cases {
		err := tc.m.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestParseManifestRejectsUnknownFields(t *testing.T) {
	_, err := ParseManifest([]byte(`{"tenants":[{"name":"a","tokens":["t"],"shard":3}]}`))
	if err == nil || !strings.Contains(err.Error(), "shard") {
		t.Fatalf("unknown field accepted: %v", err)
	}
}

func TestBundleFingerprint(t *testing.T) {
	base := validTenant("alpha", "t1")
	same := base
	same.Tokens = []string{"rotated"} // token rotation must NOT rebuild the engine
	same.RateRPS = 99                 // neither must rate tuning
	if base.bundleFingerprint() != same.bundleFingerprint() {
		t.Error("token/rate change altered the bundle fingerprint")
	}
	changed := base
	changed.ExtraPLAs = `pla "p" { owner "o"; level source; scope "s"; }`
	if base.bundleFingerprint() == changed.bundleFingerprint() {
		t.Error("policy bundle change not reflected in fingerprint")
	}
}

func TestBucketRefillAndBurst(t *testing.T) {
	if b := newBucket(0, 5); b != nil {
		t.Fatal("rate 0 should mean unlimited (nil bucket)")
	}
	var nb *bucket
	if !nb.allow(time.Now()) {
		t.Fatal("nil bucket must admit everything")
	}

	t0 := time.Unix(1000, 0)
	b := newBucket(2, 2) // 2 rps, burst 2
	if !b.allow(t0) || !b.allow(t0) {
		t.Fatal("burst capacity not granted")
	}
	if b.allow(t0) {
		t.Fatal("admitted past burst")
	}
	if ra := b.retryAfter(); ra < time.Second {
		t.Fatalf("retryAfter = %v, want >= 1s", ra)
	}
	// Half a second refills one token at 2 rps.
	if !b.allow(t0.Add(500 * time.Millisecond)) {
		t.Fatal("refill not granted")
	}
	if b.allow(t0.Add(500 * time.Millisecond)) {
		t.Fatal("double-spent the refilled token")
	}
	// Long idle caps at burst, not unbounded.
	t1 := t0.Add(time.Hour)
	if !b.allow(t1) || !b.allow(t1) {
		t.Fatal("burst not restored after idle")
	}
	if b.allow(t1) {
		t.Fatal("tokens accumulated past burst")
	}
}
