package etl

import (
	"context"
	"errors"
	"testing"

	"plabi/internal/obs"
	"plabi/internal/relation"
)

// TestSkipCascadeTwoDeep: a violation-blocked join leaves no output, so
// its direct dependent and that dependent's dependent must both be
// skipped (not abort the run with "staging table not found"), recorded
// via Observe in step order and counted under etl.skipped, while
// unrelated steps still run.
func TestSkipCascadeTwoDeep(t *testing.T) {
	hosp, fam, _ := sources()
	c := NewContext(denyGuard{joinA: "prescriptions", joinB: "familydoctor"})
	c.Metrics = obs.New()
	type ev struct {
		step string
		err  error
	}
	var events []ev
	c.Observe = func(step, op, output string, in, out int, err error) {
		events = append(events, ev{step, err})
	}
	p := &Pipeline{Name: "cascade", Steps: []Step{
		NewExtract("e1", hosp, "prescriptions", ""),
		NewExtract("e2", fam, "familydoctor", ""),
		NewJoin("bad", "prescriptions", "familydoctor",
			relation.Eq(relation.ColRefExpr("l.patient"), relation.ColRefExpr("r.patient")),
			relation.InnerJoin, "joined"),
		NewProject("lvl1", "joined", "slim", "l_patient"),
		NewProject("lvl2", "slim", "slimmer", "l_patient"),
		NewFilter("good", "prescriptions", "ok_out", relation.ColEqStr("disease", "asthma")),
	}}
	res, err := p.Run(c, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 1 || res.Skipped != 2 || res.StepsRun != 3 {
		t.Fatalf("violations=%d skipped=%d steps=%d", len(res.Violations), res.Skipped, res.StepsRun)
	}
	if got := c.Metrics.Counter("etl.skipped").Value(); got != 2 {
		t.Errorf("etl.skipped = %d, want 2", got)
	}
	// The unrelated branch still ran.
	if _, gerr := c.Get("ok_out"); gerr != nil {
		t.Error("independent step should have run past the blocked branch")
	}
	// Neither skipped step left an output.
	for _, name := range []string{"joined", "slim", "slimmer"} {
		if _, gerr := c.Get(name); gerr == nil {
			t.Errorf("blocked/skipped output %q must be absent", name)
		}
	}
	// Observe saw both skips, in step order, as *SkippedError naming the
	// missing upstream relation.
	var skips []ev
	for _, e := range events {
		if IsSkipped(e.err) {
			skips = append(skips, e)
		}
	}
	if len(skips) != 2 || skips[0].step != "lvl1" || skips[1].step != "lvl2" {
		t.Fatalf("skip events = %+v", skips)
	}
	var se *SkippedError
	if !errors.As(skips[0].err, &se) || se.Upstream != "joined" {
		t.Errorf("lvl1 skip = %v", skips[0].err)
	}
	if !errors.As(skips[1].err, &se) || se.Upstream != "slim" {
		t.Errorf("lvl2 skip = %v", skips[1].err)
	}
	// A skip is neither a violation nor silent.
	if IsViolation(skips[0].err) {
		t.Error("skip must not classify as a violation")
	}
}

// TestSkipSparesOverwriteReaders: when the blocked step would have
// overwritten a relation that already exists, its readers see the prior
// version (identical to sequential semantics) and must not be skipped.
func TestSkipSparesOverwriteReaders(t *testing.T) {
	hosp, fam, _ := sources()
	c := NewContext(denyGuard{joinA: "prescriptions", joinB: "familydoctor"})
	c.Metrics = obs.New()
	prior := relation.NewBase("joined", relation.NewSchema(relation.Col("l_patient", relation.TString)))
	prior.AppendVals(relation.Str("Alice Rossi"))
	c.Put("joined", prior)
	p := &Pipeline{Steps: []Step{
		NewExtract("e1", hosp, "prescriptions", ""),
		NewExtract("e2", fam, "familydoctor", ""),
		NewJoin("bad", "prescriptions", "familydoctor",
			relation.Eq(relation.ColRefExpr("l.patient"), relation.ColRefExpr("r.patient")),
			relation.InnerJoin, "joined"),
		NewProject("reader", "joined", "slim", "l_patient"),
	}}
	res, err := p.Run(c, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped != 0 || len(res.Violations) != 1 {
		t.Fatalf("skipped=%d violations=%d", res.Skipped, len(res.Violations))
	}
	out, gerr := c.Get("slim")
	if gerr != nil {
		t.Fatalf("reader of the surviving prior version must run: %v", gerr)
	}
	if out.NumRows() != 1 {
		t.Errorf("reader saw %d rows, want the 1 prior row", out.NumRows())
	}
}

// TestFailedOverwriteReportsZeroRows: a step that fails while its output
// name already holds a staging table must report rowsOut == 0 to
// Observe, not the stale table's row count.
func TestFailedOverwriteReportsZeroRows(t *testing.T) {
	hosp, _, _ := sources()
	c := NewContext(nil)
	var failedRowsOut = -1
	c.Observe = func(step, op, output string, in, out int, err error) {
		if step == "boom" {
			failedRowsOut = out
		}
	}
	p := &Pipeline{Steps: []Step{
		NewExtract("e", hosp, "prescriptions", ""),
		// Overwrites "prescriptions" and fails: the five extracted rows
		// are still in staging under that name, but the failed step must
		// not claim them.
		NewTransform("boom", "explode", "prescriptions", "prescriptions",
			func(context.Context, *relation.Table) (*relation.Table, error) {
				return nil, errors.New("kaboom")
			}),
	}}
	_, err := p.Run(c, false)
	if err == nil {
		t.Fatal("run must fail")
	}
	if failedRowsOut != 0 {
		t.Errorf("failed step reported rowsOut = %d, want 0", failedRowsOut)
	}
}
