package fault

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"plabi/internal/obs"
)

// drive calls Hit n times at a site, recovering injected panics, and
// returns per-kind outcome counts.
func drive(t *testing.T, i *Injector, site string, n int) map[string]int {
	t.Helper()
	out := map[string]int{}
	for c := 0; c < n; c++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(*PanicValue); !ok {
						t.Fatalf("unexpected panic value %v", r)
					}
					out["panic"]++
				}
			}()
			if err := i.Hit(context.Background(), site); err != nil {
				if !errors.Is(err, ErrInjected) {
					t.Fatalf("unexpected error %v", err)
				}
				out["error"]++
			} else {
				out["ok"]++
			}
		}()
	}
	return out
}

func TestInjectorDeterministic(t *testing.T) {
	cfg := SiteConfig{ErrorRate: 0.3, PanicRate: 0.1, LatencyRate: 0.1, Latency: time.Microsecond}
	run := func() ([]Fire, map[string]int) {
		i := NewInjector(42)
		i.Enable(SiteETLStep, cfg)
		i.Enable(SiteAuditSink, SiteConfig{ErrorRate: 0.5, Transient: true})
		counts := drive(t, i, SiteETLStep, 200)
		for c := 0; c < 100; c++ {
			i.Hit(context.Background(), SiteAuditSink)
		}
		return i.Schedule(), counts
	}
	s1, c1 := run()
	s2, c2 := run()
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("same seed produced different schedules:\n%v\n%v", s1, s2)
	}
	if !reflect.DeepEqual(c1, c2) {
		t.Fatalf("same seed produced different outcome counts: %v vs %v", c1, c2)
	}
	if len(s1) == 0 {
		t.Fatal("no faults fired at these rates")
	}
	// Enable order must not change per-site schedules.
	i3 := NewInjector(42)
	i3.Enable(SiteAuditSink, SiteConfig{ErrorRate: 0.5, Transient: true})
	i3.Enable(SiteETLStep, cfg)
	if c3 := drive(t, i3, SiteETLStep, 200); !reflect.DeepEqual(c1, c3) {
		t.Fatalf("enable order changed site schedule: %v vs %v", c1, c3)
	}

	if NewInjector(43).Seed() != 43 {
		t.Fatal("Seed() mismatch")
	}
}

func TestInjectorTimesBound(t *testing.T) {
	i := NewInjector(7)
	i.Enable(SiteETLExtract, SiteConfig{ErrorRate: 1, Transient: true, Times: 3})
	counts := drive(t, i, SiteETLExtract, 10)
	if counts["error"] != 3 || counts["ok"] != 7 {
		t.Fatalf("want exactly 3 fires then success, got %v", counts)
	}
	var se *SiteError
	i2 := NewInjector(7)
	i2.Enable(SiteETLExtract, SiteConfig{ErrorRate: 1, Transient: true, Times: 1})
	err := i2.Hit(context.Background(), SiteETLExtract)
	if !errors.As(err, &se) || !se.Temporary() || se.Site != SiteETLExtract {
		t.Fatalf("want transient SiteError at %s, got %v", SiteETLExtract, err)
	}
}

func TestInjectorNilAndUnconfigured(t *testing.T) {
	var i *Injector
	if err := i.Hit(context.Background(), SiteETLStep); err != nil {
		t.Fatalf("nil injector must be a no-op, got %v", err)
	}
	i.Enable(SiteETLStep, SiteConfig{ErrorRate: 1})
	i.SetMetrics(obs.New())
	if i.Seed() != 0 || i.Schedule() != nil {
		t.Fatal("nil injector accessors must be zero-valued")
	}
	live := NewInjector(1)
	if err := live.Hit(context.Background(), "no.such.site"); err != nil {
		t.Fatalf("unconfigured site must be clean, got %v", err)
	}
}

func TestInjectorLatencyHonoursContext(t *testing.T) {
	i := NewInjector(3)
	i.Enable(SiteRenderWorker, SiteConfig{LatencyRate: 1, Latency: time.Hour})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := i.Hit(ctx, SiteRenderWorker); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled latency sleep must return ctx error, got %v", err)
	}
}

func TestInjectorMetricsAndSummary(t *testing.T) {
	m := obs.New()
	i := NewInjector(5)
	i.SetMetrics(m)
	i.Enable(SiteAuditSink, SiteConfig{ErrorRate: 1, Times: 2})
	for c := 0; c < 4; c++ {
		i.Hit(context.Background(), SiteAuditSink)
	}
	if got := m.Counter("fault.injected").Value(); got != 2 {
		t.Fatalf("fault.injected = %d, want 2", got)
	}
	if got := m.Counter("fault.injected." + SiteAuditSink).Value(); got != 2 {
		t.Fatalf("per-site counter = %d, want 2", got)
	}
	if cs := i.Counts(); cs[SiteAuditSink] != 2 {
		t.Fatalf("Counts = %v", cs)
	}
	want := fmt.Sprintf("fault injector (seed 5): %s=2", SiteAuditSink)
	if got := i.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	if got := NewInjector(9).String(); got != "fault injector (seed 9): no fires" {
		t.Fatalf("empty String() = %q", got)
	}
}

func TestEnableSpec(t *testing.T) {
	i := NewInjector(11)
	spec := "etl.step:error:0.5, audit.sink.write:error:1:transient,render.worker:panic:1,etl.extract:latency:1:5ms"
	if err := i.EnableSpec(spec); err != nil {
		t.Fatalf("EnableSpec: %v", err)
	}
	err := i.Hit(context.Background(), SiteAuditSink)
	var se *SiteError
	if !errors.As(err, &se) || !se.Temporary() {
		t.Fatalf("want transient injected error, got %v", err)
	}
	func() {
		defer func() {
			if _, ok := recover().(*PanicValue); !ok {
				t.Fatal("want injected panic at render.worker")
			}
		}()
		i.Hit(context.Background(), SiteRenderWorker)
	}()

	for _, bad := range []string{
		"etl.step",                // too few fields
		"etl.step:error:0.5:x:y",  // too many fields
		"etl.step:error:nope",     // bad rate
		"etl.step:error:1.5",      // rate out of range
		"etl.step:error:1:sticky", // bad error arg
		"etl.step:latency:1:fast", // bad duration
		"etl.step:explode:1",      // unknown kind
	} {
		if err := NewInjector(0).EnableSpec(bad); err == nil {
			t.Fatalf("EnableSpec(%q) must fail", bad)
		}
	}
	if err := NewInjector(0).EnableSpec(""); err != nil {
		t.Fatalf("empty spec must be a no-op, got %v", err)
	}
}

func TestRetryRecoversTransient(t *testing.T) {
	m := obs.New()
	i := NewInjector(1)
	i.Enable(SiteAuditSink, SiteConfig{ErrorRate: 1, Transient: true, Times: 2})
	p := RetryPolicy{MaxAttempts: 4, Base: time.Microsecond, Max: 10 * time.Microsecond, Multiplier: 2, Jitter: 0.5}
	calls := 0
	err := Retry(context.Background(), p, m, func(ctx context.Context) error {
		calls++
		return i.Hit(ctx, SiteAuditSink)
	})
	if err != nil || calls != 3 {
		t.Fatalf("want success on attempt 3, got err=%v calls=%d", err, calls)
	}
	if got := m.Counter("retry.retries").Value(); got != 2 {
		t.Fatalf("retry.retries = %d, want 2", got)
	}
	if got := m.Counter("retry.attempts").Value(); got != 3 {
		t.Fatalf("retry.attempts = %d, want 3", got)
	}
}

func TestRetryExhaustsBudget(t *testing.T) {
	m := obs.New()
	p := RetryPolicy{MaxAttempts: 3, Base: time.Microsecond}
	calls := 0
	sentinel := errors.New("still down")
	err := Retry(context.Background(), p, m, func(ctx context.Context) error {
		calls++
		return sentinel
	})
	if calls != 3 || !errors.Is(err, sentinel) {
		t.Fatalf("want 3 attempts wrapping sentinel, got calls=%d err=%v", calls, err)
	}
	if got := m.Counter("retry.exhausted").Value(); got != 1 {
		t.Fatalf("retry.exhausted = %d, want 1", got)
	}
}

func TestRetryStopsOnPermanentAndInternal(t *testing.T) {
	for _, tc := range []struct {
		name string
		err  error
	}{
		{"permanent", Permanent(errors.New("bad request"))},
		{"internal", &InternalError{Site: "x", Value: "boom"}},
		{"non-temporary", &SiteError{Site: "x"}},
	} {
		calls := 0
		err := Retry(context.Background(), RetryPolicy{MaxAttempts: 5, Base: time.Microsecond}, nil, func(ctx context.Context) error {
			calls++
			return tc.err
		})
		if calls != 1 {
			t.Fatalf("%s: want 1 attempt, got %d", tc.name, calls)
		}
		if !errors.Is(err, tc.err) && err != tc.err {
			t.Fatalf("%s: error not propagated: %v", tc.name, err)
		}
	}
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) must be nil")
	}
}

func TestRetryStopsOnContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := Retry(ctx, RetryPolicy{MaxAttempts: 10, Base: time.Hour}, nil, func(ctx context.Context) error {
		calls++
		cancel()
		return errors.New("transient-ish")
	})
	if calls != 1 {
		t.Fatalf("want no retry after cancel, got %d attempts", calls)
	}
	if err == nil {
		t.Fatal("want error after cancel")
	}
}

func TestRetryAttemptTimeout(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 2, Base: time.Microsecond, AttemptTimeout: 5 * time.Millisecond}
	calls := 0
	err := Retry(context.Background(), p, nil, func(ctx context.Context) error {
		calls++
		<-ctx.Done()
		return ctx.Err()
	})
	// Each attempt's own deadline expires; the parent ctx is untouched,
	// so DeadlineExceeded is non-retryable and stops the loop.
	if calls != 1 || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want 1 deadline-bounded attempt, got calls=%d err=%v", calls, err)
	}
}

func TestRetryZeroPolicySingleAttempt(t *testing.T) {
	calls := 0
	sentinel := errors.New("x")
	err := Retry(context.Background(), RetryPolicy{}, nil, func(ctx context.Context) error {
		calls++
		return sentinel
	})
	if calls != 1 || !errors.Is(err, sentinel) {
		t.Fatalf("zero policy must try once: calls=%d err=%v", calls, err)
	}
}

func TestRetryable(t *testing.T) {
	for _, tc := range []struct {
		err  error
		want bool
	}{
		{nil, false},
		{context.Canceled, false},
		{fmt.Errorf("wrap: %w", context.DeadlineExceeded), false},
		{Permanent(errors.New("x")), false},
		{fmt.Errorf("wrap: %w", Permanent(errors.New("x"))), false},
		{&InternalError{Site: "s"}, false},
		{&SiteError{Site: "s", transient: true}, true},
		{&SiteError{Site: "s"}, false},
		{errors.New("plain"), true},
	} {
		if got := Retryable(tc.err); got != tc.want {
			t.Fatalf("Retryable(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

func TestSafelyConvertsPanic(t *testing.T) {
	m := obs.New()
	err := Safely("etl.step(join)", m, func() error {
		panic("kaboom")
	})
	var ie *InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("want InternalError, got %v", err)
	}
	if !errors.Is(err, ErrInternal) {
		t.Fatal("InternalError must unwrap to ErrInternal")
	}
	if ie.Site != "etl.step(join)" || ie.Value != "kaboom" || len(ie.Stack) == 0 {
		t.Fatalf("InternalError fields wrong: %+v", ie)
	}
	if got := m.Counter("fault.panics").Value(); got != 1 {
		t.Fatalf("fault.panics = %d, want 1", got)
	}
	if err := Safely("ok", nil, func() error { return nil }); err != nil {
		t.Fatalf("clean fn must pass through, got %v", err)
	}
	sentinel := errors.New("organic")
	if err := Safely("ok", nil, func() error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("organic error must pass through, got %v", err)
	}
}

// recordingT captures Errorf calls for leak-checker self-tests.
type recordingT struct {
	failed bool
	msg    string
}

func (r *recordingT) Helper() {}
func (r *recordingT) Errorf(format string, args ...any) {
	r.failed = true
	r.msg = fmt.Sprintf(format, args...)
}

func TestCheckLeaksCleanRun(t *testing.T) {
	rt := &recordingT{}
	check := CheckLeaks(rt)
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
	check()
	if rt.failed {
		t.Fatalf("clean run flagged as leaking: %s", rt.msg)
	}
}

func TestCheckLeaksDetectsLeak(t *testing.T) {
	rt := &recordingT{}
	check := CheckLeaks(rt)
	stop := make(chan struct{})
	started := make(chan struct{})
	go func() {
		close(started)
		<-stop // leaks until we release it below
	}()
	<-started
	check()
	close(stop)
	if !rt.failed {
		t.Fatal("leaked goroutine not detected")
	}
}
