// Package warehouse implements the data-warehouse substrate of the BI
// pipeline (§4): star schemas with surrogate-keyed dimensions and
// hierarchy levels, fact tables carrying full lineage back to the source
// rows, OLAP aggregation with rollup/drill-down/slice/dice, and
// materialized aggregate views.
package warehouse

import (
	"fmt"
	"sort"
	"strings"

	"plabi/internal/relation"
)

// Dimension is one star-schema dimension: a surrogate-keyed table of
// distinct members with attribute columns ordered from fine to coarse
// (the rollup hierarchy).
type Dimension struct {
	Name string
	// Table holds the members: Key + NaturalKey + Levels columns.
	Table *relation.Table
	// Key is the surrogate key column ("<name>_key").
	Key string
	// NaturalKey is the source column the dimension was built from.
	NaturalKey string
	// Levels are attribute columns ordered fine -> coarse for rollup.
	Levels []string
}

// LevelIndex returns the position of an attribute in the hierarchy, or -1.
func (d *Dimension) LevelIndex(attr string) int {
	for i, l := range d.Levels {
		if strings.EqualFold(l, attr) {
			return i
		}
	}
	return -1
}

// BuildDimension creates a dimension from the distinct values of
// naturalKey in src, carrying the given attribute columns (functionally
// dependent on the natural key; the first value wins on conflicts).
// Levels defaults to [naturalKey] when attrs is empty.
func BuildDimension(name string, src *relation.Table, naturalKey string, attrs []string) (*Dimension, error) {
	cols := append([]string{naturalKey}, attrs...)
	proj, err := relation.ProjectCols(src, cols...)
	if err != nil {
		return nil, fmt.Errorf("warehouse: dimension %s: %w", name, err)
	}
	// Distinct on the natural key only: keep first row per member.
	ki := proj.Schema.Index(naturalKey)
	seen := map[string]bool{}
	dedup := &relation.Table{Name: "dim_" + name, Schema: proj.Schema.Clone()}
	dedup.ColOrigin = make([]relation.ColRefSet, proj.Schema.Len())
	for c := range dedup.ColOrigin {
		dedup.ColOrigin[c] = proj.ColumnOrigin(c)
	}
	for i, r := range proj.Rows {
		k := r[ki].Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		dedup.Rows = append(dedup.Rows, r)
		dedup.Lineage = append(dedup.Lineage, proj.RowLineage(i))
	}
	// Deterministic member order.
	sorted, err := relation.Sort(dedup, relation.SortKey{Col: naturalKey})
	if err != nil {
		return nil, err
	}
	keyCol := name + "_key"
	withKey := &relation.Table{Name: "dim_" + name}
	withKey.Schema = &relation.Schema{Columns: append(
		[]relation.Column{{Name: keyCol, Type: relation.TInt}},
		sorted.Schema.Columns...)}
	withKey.ColOrigin = make([]relation.ColRefSet, 0, withKey.Schema.Len())
	withKey.ColOrigin = append(withKey.ColOrigin, nil) // synthetic key
	for c := range sorted.Schema.Columns {
		withKey.ColOrigin = append(withKey.ColOrigin, sorted.ColumnOrigin(c))
	}
	for i, r := range sorted.Rows {
		nr := make(relation.Row, 0, len(r)+1)
		nr = append(nr, relation.Int(int64(i+1)))
		nr = append(nr, r...)
		withKey.Rows = append(withKey.Rows, nr)
		withKey.Lineage = append(withKey.Lineage, sorted.RowLineage(i))
	}
	levels := attrs
	if len(levels) == 0 {
		levels = []string{naturalKey}
	}
	return &Dimension{
		Name: name, Table: withKey, Key: keyCol,
		NaturalKey: naturalKey, Levels: append([]string{naturalKey}, attrs...),
	}, nil
}

// BuildDateDimension creates a date dimension with the standard hierarchy
// date -> month -> quarter -> year from the distinct dates of src.
func BuildDateDimension(name string, src *relation.Table, dateCol string) (*Dimension, error) {
	ext, err := relation.Project(src,
		relation.P(dateCol),
		relation.PAs(relation.Bin(relation.OpConcat,
			relation.Fn("CAST_STRING", relation.Fn("YEAR", relation.ColRefExpr(dateCol))),
			relation.Bin(relation.OpConcat, relation.Lit(relation.Str("-")),
				relation.Fn("CAST_STRING", relation.Fn("MONTH", relation.ColRefExpr(dateCol))))), "month"),
		relation.PAs(relation.Bin(relation.OpConcat,
			relation.Fn("CAST_STRING", relation.Fn("YEAR", relation.ColRefExpr(dateCol))),
			relation.Bin(relation.OpConcat, relation.Lit(relation.Str("-Q")),
				relation.Fn("CAST_STRING", relation.Fn("QUARTER", relation.ColRefExpr(dateCol))))), "quarter"),
		relation.PAs(relation.Fn("YEAR", relation.ColRefExpr(dateCol)), "year"),
	)
	if err != nil {
		return nil, err
	}
	ext.Name = src.Name
	return BuildDimension(name, ext, dateCol, []string{"month", "quarter", "year"})
}

// Star is a star schema: one fact table whose rows reference dimensions by
// surrogate key and carry measure columns.
type Star struct {
	Name     string
	Fact     *relation.Table
	Dims     []*Dimension
	Measures []string
}

// Dim returns the named dimension.
func (s *Star) Dim(name string) (*Dimension, bool) {
	for _, d := range s.Dims {
		if strings.EqualFold(d.Name, name) {
			return d, true
		}
	}
	return nil, false
}

// DimForAttr returns the dimension owning the given attribute.
func (s *Star) DimForAttr(attr string) (*Dimension, bool) {
	for _, d := range s.Dims {
		if d.Table.Schema.HasColumn(attr) && !strings.EqualFold(attr, d.Key) {
			return d, true
		}
	}
	return nil, false
}

// BuildStar assembles a star schema from a wide (denormalized) input
// table: each dimension's natural key column in the input is replaced by
// the dimension's surrogate key; measure columns are carried through, and
// degenerate columns (dimension-like attributes without their own
// dimension table, e.g. a per-fact disease) are carried verbatim.
// The fact table keeps the input's row lineage, so every fact traces to
// the source rows it came from.
func BuildStar(name string, input *relation.Table, dims []*Dimension, measures []string, degenerate ...string) (*Star, error) {
	type dimLookup struct {
		dim   *Dimension
		index map[string]relation.Value // natural key -> surrogate key
		colIn int
	}
	lookups := make([]dimLookup, len(dims))
	for i, d := range dims {
		ci := input.Schema.Index(d.NaturalKey)
		if ci < 0 {
			return nil, fmt.Errorf("warehouse: star %s: input lacks %q for dimension %s", name, d.NaturalKey, d.Name)
		}
		ki := d.Table.Schema.Index(d.Key)
		ni := d.Table.Schema.Index(d.NaturalKey)
		idx := make(map[string]relation.Value, d.Table.NumRows())
		for _, r := range d.Table.Rows {
			idx[r[ni].Key()] = r[ki]
		}
		lookups[i] = dimLookup{dim: d, index: idx, colIn: ci}
	}
	carried := append(append([]string(nil), measures...), degenerate...)
	measIdx := make([]int, len(carried))
	for i, m := range carried {
		ci := input.Schema.Index(m)
		if ci < 0 {
			return nil, fmt.Errorf("warehouse: star %s: input lacks column %q", name, m)
		}
		measIdx[i] = ci
	}

	fact := &relation.Table{Name: "fact_" + name}
	var cols []relation.Column
	var origins []relation.ColRefSet
	for _, l := range lookups {
		cols = append(cols, relation.Column{Name: l.dim.Key, Type: relation.TInt})
		origins = append(origins, input.ColumnOrigin(l.colIn))
	}
	for i, m := range carried {
		cols = append(cols, relation.Column{Name: m, Type: input.Schema.Columns[measIdx[i]].Type})
		origins = append(origins, input.ColumnOrigin(measIdx[i]))
	}
	fact.Schema = &relation.Schema{Columns: cols}
	fact.ColOrigin = origins

	for ri, r := range input.Rows {
		nr := make(relation.Row, 0, len(cols))
		for _, l := range lookups {
			key, ok := l.index[r[l.colIn].Key()]
			if !ok {
				key = relation.Null() // late-arriving member
			}
			nr = append(nr, key)
		}
		for _, mi := range measIdx {
			nr = append(nr, r[mi])
		}
		fact.Rows = append(fact.Rows, nr)
		fact.Lineage = append(fact.Lineage, input.RowLineage(ri))
	}
	return &Star{Name: name, Fact: fact, Dims: dims, Measures: measures}, nil
}

// SchemaSummary renders the star schema for documentation and for the
// warehouse-level elicitation discussions (§4: "one needs to expose the
// data warehouse schema to the source owners").
func (s *Star) SchemaSummary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "star %s\n  fact %s%s\n", s.Name, s.Fact.Name, s.Fact.Schema)
	names := make([]string, len(s.Dims))
	for i, d := range s.Dims {
		names[i] = d.Name
	}
	sort.Strings(names)
	for _, n := range names {
		d, _ := s.Dim(n)
		fmt.Fprintf(&b, "  dim %s%s levels=%v\n", d.Name, d.Table.Schema, d.Levels)
	}
	return b.String()
}

// VocabularySize counts the schema elements (tables and columns) a reader
// must understand to reason about the star — the elicitation-cost metric
// used by the Fig. 5 experiments.
func (s *Star) VocabularySize() int {
	n := 1 + s.Fact.Schema.Len()
	for _, d := range s.Dims {
		n += 1 + d.Table.Schema.Len()
	}
	return n
}
