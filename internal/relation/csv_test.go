package relation

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	src := prescriptionsFixture()
	var buf bytes.Buffer
	if err := src.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV("prescriptions", &buf, src.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != src.NumRows() || !got.Schema.Equal(src.Schema) {
		t.Fatalf("shape: %d rows %s", got.NumRows(), got.Schema)
	}
	for i := range src.Rows {
		for c := range src.Rows[i] {
			a, b := src.Rows[i][c], got.Rows[i][c]
			if a.IsNull() != b.IsNull() || (!a.IsNull() && a.Key() != b.Key()) {
				t.Errorf("cell (%d,%d): %v vs %v", i, c, a, b)
			}
		}
	}
}

func TestReadCSVInference(t *testing.T) {
	csvText := "name,age,weight,member,joined\n" +
		"Alice,34,61.5,true,2007-02-12\n" +
		"Bob,41,82,false,2006-11-03\n" +
		"Carla,,75.2,,\n"
	got, err := ReadCSV("people", strings.NewReader(csvText), nil)
	if err != nil {
		t.Fatal(err)
	}
	wantTypes := []Type{TString, TInt, TFloat, TBool, TDate}
	for i, w := range wantTypes {
		if got.Schema.Columns[i].Type != w {
			t.Errorf("column %d type = %v, want %v", i, got.Schema.Columns[i].Type, w)
		}
	}
	if got.Get(0, "age").I != 34 || got.Get(1, "weight").F != 82 {
		t.Errorf("values = %v", got.Rows)
	}
	if !got.Get(2, "age").IsNull() || !got.Get(2, "joined").IsNull() {
		t.Error("empty fields must load as NULL")
	}
	if got.Get(0, "joined").Kind != TDate || got.Get(0, "joined").T.Year() != 2007 {
		t.Errorf("joined = %v", got.Get(0, "joined"))
	}
}

func TestReadCSVMixedColumnFallsBackToString(t *testing.T) {
	csvText := "code\n42\nx17\n"
	got, err := ReadCSV("t", strings.NewReader(csvText), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema.Columns[0].Type != TString {
		t.Errorf("type = %v", got.Schema.Columns[0].Type)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV("t", strings.NewReader(""), nil); err == nil {
		t.Error("empty input must fail")
	}
	if _, err := ReadCSV("t", strings.NewReader("a,\n1,2\n"), nil); err == nil {
		t.Error("empty header name must fail")
	}
	if _, err := ReadCSV("t", strings.NewReader("a,b\n1\n"), nil); err == nil {
		t.Error("ragged row must fail")
	}
	schema := NewSchema(Col("a", TInt))
	if _, err := ReadCSV("t", strings.NewReader("zzz\n1\n"), schema); err == nil {
		t.Error("unknown column must fail against schema")
	}
	if _, err := ReadCSV("t", strings.NewReader("a\nnot-int\n"), schema); err == nil {
		t.Error("unparseable value must fail against schema")
	}
}

func TestReadCSVAllEmptyColumn(t *testing.T) {
	got, err := ReadCSV("t", strings.NewReader("a,b\n,1\n,2\n"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema.Columns[0].Type != TString {
		t.Errorf("all-empty column type = %v", got.Schema.Columns[0].Type)
	}
	if !got.Get(0, "a").IsNull() {
		t.Error("empty must be NULL")
	}
}
