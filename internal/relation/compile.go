package relation

import "fmt"

// compiledExpr is an expression bound to a fixed schema: every column
// reference is resolved to its index once, so per-row evaluation performs
// no name lookups. The closure reproduces the corresponding Expr.Eval
// byte for byte, including errors (an unresolvable column only errors when
// a row is actually evaluated, exactly like ColExpr.Eval).
type compiledExpr struct {
	eval func(r Row) (Value, error)
	// safe reports that eval can never return an error for any row: every
	// column resolves and every function call is statically well-formed.
	safe bool
}

// compileExpr binds e against s.
func compileExpr(e Expr, s *Schema) compiledExpr {
	switch ex := e.(type) {
	case *LitExpr:
		v := ex.V
		return compiledExpr{eval: func(Row) (Value, error) { return v, nil }, safe: true}
	case *ColExpr:
		i := s.Index(ex.Name)
		if i < 0 {
			err := fmt.Errorf("relation: unknown column %q in %s", ex.Name, s)
			return compiledExpr{eval: func(Row) (Value, error) { return Null(), err }}
		}
		return compiledExpr{eval: func(r Row) (Value, error) { return r[i], nil }, safe: true}
	case *BinExpr:
		l := compileExpr(ex.L, s)
		rr := compileExpr(ex.R, s)
		op := ex.Op
		if op == OpAnd || op == OpOr {
			return compiledExpr{
				eval: func(r Row) (Value, error) {
					lv, err := l.eval(r)
					if err != nil {
						return Null(), err
					}
					rv, err := rr.eval(r)
					if err != nil {
						return Null(), err
					}
					return evalLogic(op, lv, rv)
				},
				safe: l.safe && rr.safe,
			}
		}
		knownOp := op >= OpEq && op <= OpConcat
		return compiledExpr{
			eval: func(r Row) (Value, error) {
				lv, err := l.eval(r)
				if err != nil {
					return Null(), err
				}
				rv, err := rr.eval(r)
				if err != nil {
					return Null(), err
				}
				if lv.IsNull() || rv.IsNull() {
					return Null(), nil
				}
				switch op {
				case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
					c, ok := lv.Compare(rv)
					if !ok {
						return Null(), nil
					}
					switch op {
					case OpEq:
						return Bool(c == 0), nil
					case OpNe:
						return Bool(c != 0), nil
					case OpLt:
						return Bool(c < 0), nil
					case OpLe:
						return Bool(c <= 0), nil
					case OpGt:
						return Bool(c > 0), nil
					default:
						return Bool(c >= 0), nil
					}
				case OpAdd, OpSub, OpMul, OpDiv, OpMod:
					return evalArith(op, lv, rv)
				case OpLike:
					if lv.Kind != TString || rv.Kind != TString {
						return Null(), nil
					}
					return Bool(likeMatch(rv.S, lv.S)), nil
				case OpConcat:
					return Str(lv.String() + rv.String()), nil
				default:
					return Null(), fmt.Errorf("relation: unknown operator %v", op)
				}
			},
			safe: l.safe && rr.safe && knownOp,
		}
	case *NotExpr:
		sub := compileExpr(ex.E, s)
		return compiledExpr{
			eval: func(r Row) (Value, error) {
				v, err := sub.eval(r)
				if err != nil || v.IsNull() {
					return Null(), err
				}
				if v.Kind != TBool {
					return Null(), nil
				}
				return Bool(!v.B), nil
			},
			safe: sub.safe,
		}
	case *NegExpr:
		sub := compileExpr(ex.E, s)
		return compiledExpr{
			eval: func(r Row) (Value, error) {
				v, err := sub.eval(r)
				if err != nil || v.IsNull() {
					return Null(), err
				}
				switch v.Kind {
				case TInt:
					return Int(-v.I), nil
				case TFloat:
					return Float(-v.F), nil
				default:
					return Null(), nil
				}
			},
			safe: sub.safe,
		}
	case *IsNullExpr:
		sub := compileExpr(ex.E, s)
		neg := ex.Negate
		return compiledExpr{
			eval: func(r Row) (Value, error) {
				v, err := sub.eval(r)
				if err != nil {
					return Null(), err
				}
				return Bool(v.IsNull() != neg), nil
			},
			safe: sub.safe,
		}
	case *InExpr:
		sub := compileExpr(ex.E, s)
		list := make([]compiledExpr, len(ex.List))
		safe := sub.safe
		for i, le := range ex.List {
			list[i] = compileExpr(le, s)
			safe = safe && list[i].safe
		}
		neg := ex.Negate
		return compiledExpr{
			eval: func(r Row) (Value, error) {
				v, err := sub.eval(r)
				if err != nil {
					return Null(), err
				}
				if v.IsNull() {
					return Null(), nil
				}
				sawNull := false
				for _, le := range list {
					lv, err := le.eval(r)
					if err != nil {
						return Null(), err
					}
					if lv.IsNull() {
						sawNull = true
						continue
					}
					if v.Equal(lv) {
						return Bool(!neg), nil
					}
				}
				if sawNull {
					return Null(), nil
				}
				return Bool(neg), nil
			},
			safe: safe,
		}
	case *FuncExpr:
		args := make([]compiledExpr, len(ex.Args))
		safe := scalarStaticallySafe(ex.Name, len(ex.Args))
		for i, a := range ex.Args {
			args[i] = compileExpr(a, s)
			safe = safe && args[i].safe
		}
		name := ex.Name
		return compiledExpr{
			eval: func(r Row) (Value, error) {
				vals := make([]Value, len(args))
				for i, a := range args {
					v, err := a.eval(r)
					if err != nil {
						return Null(), err
					}
					vals[i] = v
				}
				return callScalar(name, vals)
			},
			safe: safe,
		}
	default:
		// Unknown node type: defer to its own Eval (no binding possible).
		return compiledExpr{eval: func(r Row) (Value, error) { return e.Eval(r, s) }}
	}
}

// scalarStaticallySafe reports whether a scalar call with the given arity
// can never error at evaluation time (callScalar only errors on unknown
// names and arity mismatches; value-level failures yield NULL).
func scalarStaticallySafe(name string, arity int) bool {
	switch name {
	case "UPPER", "LOWER", "LENGTH", "TRIM", "ABS", "ROUND",
		"YEAR", "MONTH", "DAY", "QUARTER", "DATE",
		"CAST_INT", "CAST_FLOAT", "CAST_STRING":
		return arity == 1
	case "SUBSTR":
		return arity == 3
	case "COALESCE":
		return true
	default:
		return false
	}
}

// compiledPred is a bound row predicate: selected reports whether the row
// evaluates to exactly TRUE (EvalPredicate semantics).
type compiledPred struct {
	selected func(r Row) (bool, error)
	safe     bool
}

// compilePred binds e as a predicate against s; a nil predicate selects
// every row.
func compilePred(e Expr, s *Schema) compiledPred {
	if e == nil {
		return compiledPred{selected: func(Row) (bool, error) { return true, nil }, safe: true}
	}
	c := compileExpr(e, s)
	return compiledPred{
		selected: func(r Row) (bool, error) {
			v, err := c.eval(r)
			if err != nil {
				return false, err
			}
			return v.Kind == TBool && v.B, nil
		},
		safe: c.safe,
	}
}

// CompiledPredicate is an exported bound row predicate: every column
// reference is resolved against its schema once, so per-row evaluation
// performs no name lookups. Selected reproduces EvalPredicate byte for
// byte (including errors) — residual render programs bind PLA row
// filters and intensional conditions through this at compile time.
type CompiledPredicate struct {
	selected func(r Row) (bool, error)
	safe     bool
}

// CompilePredicate binds e as a predicate against s; a nil predicate
// selects every row.
func CompilePredicate(e Expr, s *Schema) CompiledPredicate {
	c := compilePred(e, s)
	return CompiledPredicate{selected: c.selected, safe: c.safe}
}

// Selected reports whether the row evaluates to exactly TRUE, with
// EvalPredicate's error behavior.
func (p CompiledPredicate) Selected(r Row) (bool, error) { return p.selected(r) }

// Safe reports whether evaluation can never error for any row.
func (p CompiledPredicate) Safe() bool { return p.safe }

// SafePredicate reports whether evaluating e against rows of s can never
// return an error: every column reference resolves in s and every scalar
// call is statically well-formed. Query planners use this to relocate a
// predicate (e.g. push it below a join) without changing which renders
// fail: an unsafe predicate errors on every row it touches, so moving it
// could surface errors on rows the original plan never evaluated.
func SafePredicate(e Expr, s *Schema) bool {
	if e == nil {
		return true
	}
	return compileExpr(e, s).safe
}
