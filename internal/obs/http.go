package obs

import (
	"net/http"
	"net/http/pprof"
)

// Handler serves the snapshot produced by fn as JSON — the body of a
// /metrics endpoint. fn lets callers merge engine-level gauges (cache
// stats, audit depth) into the registry snapshot per request.
func Handler(fn func() Snapshot) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = WriteSnapshotJSON(w, fn())
	})
}

// DebugMux returns a mux serving GET /metrics (the JSON snapshot) and
// the standard /debug/pprof profiling endpoints, for wiring into a demo
// or operations listener.
func DebugMux(fn func() Snapshot) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(fn))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
