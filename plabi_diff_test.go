package plabi_test

import (
	"bytes"
	"strings"
	"testing"

	"plabi"
)

// betaMask restricts the drug-consumption report: the drug column, the
// report's own group-by key, gets masked.
const betaMask = `pla "beta-mask" {
    owner "hospital"; level report; scope "drug-consumption";
    deny attribute drug;
}`

func openDiffEngine(t *testing.T) *plabi.Engine {
	t.Helper()
	e, err := plabi.OpenHealthcare(plabi.HealthcareConfig{Seed: 1, Prescriptions: 60})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

// TestDiffIdentity: two equally built deployments diff silent, and the
// compiled residual programs pass PD000 translation validation.
func TestDiffIdentity(t *testing.T) {
	e1, e2 := openDiffEngine(t), openDiffEngine(t)
	imps, err := plabi.Diff(e1, e2)
	if err != nil {
		t.Fatal(err)
	}
	if len(imps) != 0 {
		var b bytes.Buffer
		_ = plabi.WriteImpactsText(&b, imps)
		t.Fatalf("identity diff produced %d impacts:\n%s", len(imps), b.String())
	}
	v, err := plabi.ValidateCompiled(e1)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 0 {
		var b bytes.Buffer
		_ = plabi.WriteImpactsText(&b, v)
		t.Fatalf("PD000: %d compiler divergences:\n%s", len(v), b.String())
	}
}

// TestDiffMaskAsymmetry: adding a report-level deny is a regression
// (warnings, never an expansion); removing it again is an expansion the
// reload gate must refuse.
func TestDiffMaskAsymmetry(t *testing.T) {
	base, masked := openDiffEngine(t), openDiffEngine(t)
	if err := masked.AddPLAs(betaMask); err != nil {
		t.Fatal(err)
	}

	restrict, err := plabi.Diff(base, masked)
	if err != nil {
		t.Fatal(err)
	}
	if len(restrict) == 0 {
		t.Fatal("masking a released column produced no impacts")
	}
	if exp := plabi.Expansions(restrict); len(exp) != 0 {
		var b bytes.Buffer
		_ = plabi.WriteImpactsText(&b, exp)
		t.Fatalf("restriction must not count as expansion:\n%s", b.String())
	}
	sawDeny := false
	for _, im := range restrict {
		if im.Code == plabi.DiffNewDeny {
			sawDeny = true
		}
	}
	if !sawDeny {
		t.Errorf("no %s impact among %d restriction findings", plabi.DiffNewDeny, len(restrict))
	}

	widen, err := plabi.Diff(masked, base)
	if err != nil {
		t.Fatal(err)
	}
	exp := plabi.Expansions(widen)
	if len(exp) == 0 {
		t.Fatal("dropping the mask produced no expansion impacts")
	}
	var b bytes.Buffer
	_ = plabi.WriteImpactsText(&b, exp)
	out := b.String()
	for _, want := range []string{plabi.DiffNewAllow, plabi.DiffColumnPlan, "drug-consumption"} {
		if !strings.Contains(out, want) {
			t.Errorf("expansion output missing %q:\n%s", want, out)
		}
	}
	if got := plabi.MaxImpactSeverity(widen); got != plabi.LintError {
		t.Errorf("max severity of a widening diff = %v, want %v", got, plabi.LintError)
	}
	if kept := plabi.FilterImpacts(widen, plabi.LintError); len(kept) != len(exp) {
		t.Errorf("FilterImpacts(error) kept %d, Expansions found %d", len(kept), len(exp))
	}
}

// TestValidateBundle: the file-path entry points behind `pladiff` agree
// with the engine-level ones on the bare scenario.
func TestValidateBundle(t *testing.T) {
	imps, err := plabi.ValidateBundle("")
	if err != nil {
		t.Fatal(err)
	}
	if len(imps) != 0 {
		var b bytes.Buffer
		_ = plabi.WriteImpactsText(&b, imps)
		t.Fatalf("bare scenario failed PD000 validation:\n%s", b.String())
	}
	dimps, err := plabi.DiffFiles("", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(dimps) != 0 {
		t.Fatalf("DiffFiles of two bare contexts produced %d impacts", len(dimps))
	}
}
