package sql

import (
	"strings"
	"testing"

	"plabi/internal/relation"
)

func TestParseExprStandalone(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"disease <> 'HIV'", "(disease <> 'HIV')"},
		{"NOT (a = 1)", "(NOT (a = 1))"},
		{"age + 1 * 2 - 3", "((age + (1 * 2)) - 3)"},
		{"-age", "(-age)"},
		{"a || 'x'", "(a || 'x')"},
		{"a % 2 = 0", "((a % 2) = 0)"},
		{"x NOT LIKE 'A%'", "(NOT (x LIKE 'A%'))"},
		{"x NOT BETWEEN 1 AND 3", "(NOT ((x >= 1) AND (x <= 3)))"},
		{"x NOT IN (1, 2)", "(x NOT IN (1, 2))"},
		{"TRUE OR FALSE", "(true OR false)"},
		{"UPPER(name)", "UPPER(name)"},
	}
	for _, c := range cases {
		e, err := ParseExpr(c.src)
		if err != nil {
			t.Fatalf("ParseExpr(%q): %v", c.src, err)
		}
		if e.String() != c.want {
			t.Errorf("ParseExpr(%q) = %q, want %q", c.src, e.String(), c.want)
		}
	}
	for _, bad := range []string{"", "a = ", "a = 1 extra", "NOT", "((a)"} {
		if _, err := ParseExpr(bad); err == nil {
			t.Errorf("ParseExpr(%q) should fail", bad)
		}
	}
}

func TestParseExprOperatorPrecedence(t *testing.T) {
	e, err := ParseExpr("a = 1 OR b = 2 AND c = 3")
	if err != nil {
		t.Fatal(err)
	}
	// AND binds tighter than OR.
	if got := e.String(); got != "((a = 1) OR ((b = 2) AND (c = 3)))" {
		t.Errorf("precedence = %q", got)
	}
}

func TestCatalogUtilities(t *testing.T) {
	c := testCatalog()
	names := c.TableNames()
	if len(names) != 2 || names[0] != "drugcost" || names[1] != "prescriptions" {
		t.Errorf("tables = %v", names)
	}
	if _, err := c.Run("CREATE VIEW v1 AS SELECT drug FROM drugcost"); err != nil {
		t.Fatal(err)
	}
	if vs := c.ViewNames(); len(vs) != 1 || vs[0] != "v1" {
		t.Errorf("views = %v", vs)
	}
	c.DropView("v1")
	if vs := c.ViewNames(); len(vs) != 0 {
		t.Errorf("views after drop = %v", vs)
	}
	// Exec with an unsupported statement type.
	if _, err := c.Exec(nil); err == nil {
		t.Error("nil statement must fail")
	}
}

func TestCreateViewParsing(t *testing.T) {
	stmt, err := Parse("CREATE VIEW recent AS SELECT drug FROM drugcost WHERE cost > 10")
	if err != nil {
		t.Fatal(err)
	}
	cv, ok := stmt.(*CreateViewStmt)
	if !ok || cv.Name != "recent" {
		t.Fatalf("stmt = %#v", stmt)
	}
	for _, bad := range []string{
		"CREATE TABLE t AS SELECT 1 FROM x",
		"CREATE VIEW AS SELECT 1 FROM x",
		"CREATE VIEW v SELECT 1 FROM x",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestFlippedComparisonProfile(t *testing.T) {
	c := testCatalog()
	// literal OP column must profile with the flipped operator.
	p := mustProfile(t, c, "SELECT drug FROM drugcost WHERE 20 < cost")
	if len(p.Conjuncts) != 1 {
		t.Fatalf("conjuncts = %v", p.Conjuncts)
	}
	if p.Conjuncts[0].Op != relation.OpGt || p.Conjuncts[0].Val.I != 20 {
		t.Errorf("flipped = %v", p.Conjuncts[0])
	}
	if s := p.Conjuncts[0].String(); !strings.Contains(s, "cost") {
		t.Errorf("String = %q", s)
	}
	inPred := SimplePred{Col: relation.ColRef{Table: "t", Column: "x"},
		In: []relation.Value{relation.Int(1)}, NotP: true}
	if s := inPred.String(); !strings.Contains(s, "NOT IN") {
		t.Errorf("String = %q", s)
	}
}

func TestSelectStmtStringEdges(t *testing.T) {
	sel, err := ParseSelect("SELECT DISTINCT d.drug AS x FROM drugcost AS d LEFT JOIN prescriptions AS p ON d.drug = p.drug WHERE d.cost > 1 GROUP BY d.drug HAVING x LIKE 'D%' ORDER BY x DESC LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	s := sel.String()
	for _, want := range []string{"DISTINCT", "LEFT JOIN", "HAVING", "DESC", "LIMIT 2", "AS x", "AS d"} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %s: %q", want, s)
		}
	}
	again, err := ParseSelect(s)
	if err != nil {
		t.Fatalf("re-parse %q: %v", s, err)
	}
	if again.String() != s {
		t.Errorf("unstable: %q vs %q", s, again.String())
	}
}

func TestAggCallString(t *testing.T) {
	sel, err := ParseSelect("SELECT COUNT(DISTINCT patient) FROM prescriptions")
	if err != nil {
		t.Fatal(err)
	}
	if got := sel.Items[0].Agg.String(); got != "COUNT(DISTINCT patient)" {
		t.Errorf("agg string = %q", got)
	}
	sel2, err := ParseSelect("SELECT COUNT(*) FROM prescriptions")
	if err != nil {
		t.Fatal(err)
	}
	if got := sel2.Items[0].Agg.String(); got != "COUNT(*)" {
		t.Errorf("agg string = %q", got)
	}
}

func TestSatisfiesLikeAndIn(t *testing.T) {
	col := relation.ColRef{Table: "t", Column: "x"}
	like := SimplePred{Col: col, Op: relation.OpLike, Val: relation.Str("A%")}
	if !satisfies(relation.Str("Alice"), like) || satisfies(relation.Str("Bob"), like) {
		t.Error("LIKE satisfaction wrong")
	}
	in := SimplePred{Col: col, In: []relation.Value{relation.Int(1), relation.Int(2)}}
	if !satisfies(relation.Int(1), in) || satisfies(relation.Int(3), in) {
		t.Error("IN satisfaction wrong")
	}
	notin := SimplePred{Col: col, In: []relation.Value{relation.Int(1)}, NotP: true}
	if satisfies(relation.Int(1), notin) || !satisfies(relation.Int(3), notin) {
		t.Error("NOT IN satisfaction wrong")
	}
	// Incomparable types never satisfy order predicates.
	lt := SimplePred{Col: col, Op: relation.OpLt, Val: relation.Int(5)}
	if satisfies(relation.Str("x"), lt) {
		t.Error("incomparable must not satisfy")
	}
}

func TestViewUnionedOriginsProfile(t *testing.T) {
	c := testCatalog()
	if _, err := c.Run("CREATE VIEW agg AS SELECT drug, COUNT(*) AS n FROM prescriptions GROUP BY drug"); err != nil {
		t.Fatal(err)
	}
	// Querying an aggregated view marks the profile opaque (fine-grained
	// reasoning unsound).
	p := mustProfile(t, c, "SELECT drug FROM agg WHERE n > 1")
	if !p.Opaque {
		t.Error("aggregated view must make the outer profile opaque")
	}
}
