package warehouse

import (
	"fmt"
	"strings"

	"plabi/internal/relation"
)

// CubeQuery is one OLAP aggregation over a star: group by dimension
// attributes, optionally slice with a predicate over dimension attributes
// and measures, and aggregate the measures.
type CubeQuery struct {
	// GroupBy lists dimension attributes (hierarchy levels) to group by.
	GroupBy []string
	// Slice optionally filters the joined fact rows (dice when it
	// constrains several dimensions).
	Slice relation.Expr
	// Aggs are the measure aggregations.
	Aggs []relation.AggSpec
}

// Query evaluates a cube query: the fact table is joined with every
// dimension the query touches, sliced, grouped and aggregated. The result
// carries lineage to the source rows, so report-level aggregation
// thresholds remain checkable downstream.
func (s *Star) Query(q CubeQuery) (*relation.Table, error) {
	needed := map[string]bool{}
	addAttr := func(attr string) error {
		if s.Fact.Schema.HasColumn(attr) {
			return nil // measure or key already in the fact table
		}
		d, ok := s.DimForAttr(attr)
		if !ok {
			return fmt.Errorf("warehouse: attribute %q not found in star %s", attr, s.Name)
		}
		needed[strings.ToLower(d.Name)] = true
		return nil
	}
	for _, g := range q.GroupBy {
		if err := addAttr(g); err != nil {
			return nil, err
		}
	}
	if q.Slice != nil {
		for _, ref := range relation.ColumnsOf(q.Slice) {
			if err := addAttr(ref); err != nil {
				return nil, err
			}
		}
	}

	cur := s.Fact
	for _, d := range s.Dims {
		if !needed[strings.ToLower(d.Name)] {
			continue
		}
		joined, err := relation.Join(cur, relation.Rename(d.Table, d.Name),
			relation.Eq(relation.ColRefExpr(d.Key), relation.ColRefExpr(d.Name+"."+d.Key)),
			relation.InnerJoin)
		if err != nil {
			return nil, err
		}
		cur = joined
	}
	if q.Slice != nil {
		sel, err := relation.Select(cur, q.Slice)
		if err != nil {
			return nil, err
		}
		cur = sel
	}
	out, err := relation.GroupBy(cur, q.GroupBy, q.Aggs)
	if err != nil {
		return nil, err
	}
	out, err = relation.Sort(out, sortKeysFor(q.GroupBy)...)
	if err != nil {
		return nil, err
	}
	out.Name = "cube_" + s.Name
	return out, nil
}

func sortKeysFor(groupBy []string) []relation.SortKey {
	keys := make([]relation.SortKey, len(groupBy))
	for i, g := range groupBy {
		// Group output columns are unqualified.
		name := g
		if j := strings.LastIndexByte(g, '.'); j >= 0 {
			name = g[j+1:]
		}
		keys[i] = relation.SortKey{Col: name}
	}
	return keys
}

// RollUp re-runs q with the given attribute replaced by the next coarser
// level of its dimension (e.g. month -> quarter).
func (s *Star) RollUp(q CubeQuery, attr string) (CubeQuery, error) {
	return s.shiftLevel(q, attr, +1)
}

// DrillDown re-runs q with the given attribute replaced by the next finer
// level of its dimension (e.g. quarter -> month).
func (s *Star) DrillDown(q CubeQuery, attr string) (CubeQuery, error) {
	return s.shiftLevel(q, attr, -1)
}

func (s *Star) shiftLevel(q CubeQuery, attr string, delta int) (CubeQuery, error) {
	d, ok := s.DimForAttr(attr)
	if !ok {
		return q, fmt.Errorf("warehouse: attribute %q not in any dimension", attr)
	}
	li := d.LevelIndex(attr)
	if li < 0 {
		return q, fmt.Errorf("warehouse: attribute %q is not a hierarchy level of %s", attr, d.Name)
	}
	ni := li + delta
	if ni < 0 || ni >= len(d.Levels) {
		return q, fmt.Errorf("warehouse: no level %+d from %q in dimension %s", delta, attr, d.Name)
	}
	out := q
	out.GroupBy = append([]string(nil), q.GroupBy...)
	replaced := false
	for i, g := range out.GroupBy {
		if strings.EqualFold(g, attr) {
			out.GroupBy[i] = d.Levels[ni]
			replaced = true
		}
	}
	if !replaced {
		return q, fmt.Errorf("warehouse: attribute %q not in the query's GROUP BY", attr)
	}
	return out, nil
}

// MaterializedView is a cached cube-query result refreshed on demand —
// the aggregate tables a production warehouse would maintain.
type MaterializedView struct {
	Name   string
	Query  CubeQuery
	star   *Star
	result *relation.Table
	stale  bool
}

// NewMaterializedView registers a view over the star (initially stale).
func NewMaterializedView(name string, s *Star, q CubeQuery) *MaterializedView {
	return &MaterializedView{Name: name, Query: q, star: s, stale: true}
}

// Refresh recomputes the view.
func (v *MaterializedView) Refresh() error {
	res, err := v.star.Query(v.Query)
	if err != nil {
		return err
	}
	res.Name = v.Name
	v.result = res
	v.stale = false
	return nil
}

// Result returns the current contents, refreshing when stale.
func (v *MaterializedView) Result() (*relation.Table, error) {
	if v.stale || v.result == nil {
		if err := v.Refresh(); err != nil {
			return nil, err
		}
	}
	return v.result, nil
}

// Invalidate marks the view stale (call after fact loads).
func (v *MaterializedView) Invalidate() { v.stale = true }
