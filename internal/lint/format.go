package lint

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteText renders findings one per line in the canonical, stable text
// form used by golden tests and CI logs.
func WriteText(w io.Writer, fs []Finding) error {
	for _, f := range fs {
		if _, err := fmt.Fprintln(w, f.String()); err != nil {
			return err
		}
	}
	return nil
}

// findingJSON is the stable machine-readable shape of a finding.
type findingJSON struct {
	Code     string   `json:"code"`
	Severity string   `json:"severity"`
	Level    string   `json:"level"`
	Pos      string   `json:"pos,omitempty"`
	Subject  string   `json:"subject"`
	Message  string   `json:"message"`
	PLAs     []string `json:"plas,omitempty"`
	Fix      *fixJSON `json:"suggested_fix,omitempty"`
}

type fixJSON struct {
	Summary string `json:"summary"`
	PLAID   string `json:"pla"`
	Kind    string `json:"kind"`
	Index   int    `json:"index"`
	Action  string `json:"action"`
	Value   int    `json:"value,omitempty"`
}

// WriteJSON renders findings as a JSON array (always an array, [] when
// clean) for CI artifacts and tooling.
func WriteJSON(w io.Writer, fs []Finding) error {
	out := make([]findingJSON, 0, len(fs))
	for _, f := range fs {
		j := findingJSON{
			Code:     f.Code,
			Severity: f.Severity.String(),
			Level:    f.Level.String(),
			Pos:      f.Pos.String(),
			Subject:  f.Subject,
			Message:  f.Message,
			PLAs:     f.PLAs,
		}
		if f.SuggestedFix != nil {
			j.Fix = &fixJSON{
				Summary: f.SuggestedFix.Summary,
				PLAID:   f.SuggestedFix.PLAID,
				Kind:    f.SuggestedFix.Kind,
				Index:   f.SuggestedFix.Index,
				Action:  f.SuggestedFix.Action,
				Value:   f.SuggestedFix.Value,
			}
		}
		out = append(out, j)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
