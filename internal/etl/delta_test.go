package etl

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"plabi/internal/fault"
	"plabi/internal/obs"
	"plabi/internal/relation"
	"plabi/internal/workload"
)

// dump renders a table with its per-row lineage, so equivalence checks
// cover provenance byte-for-byte, not just cell values.
func dump(t *relation.Table) string {
	var b strings.Builder
	b.WriteString(t.String())
	for i := 0; i < t.NumRows(); i++ {
		for _, ref := range t.RowLineage(i) {
			b.WriteString(ref.String())
			b.WriteByte(' ')
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func TestDeltaApplyCopyOnWrite(t *testing.T) {
	base := workload.PrescriptionsFixture()
	before := dump(base)
	d := &Delta{Source: "hospital", Table: "prescriptions",
		Inserts: []relation.Row{
			{relation.Str("Zoe"), relation.Str("Luis"), relation.Str("DM"), relation.Str("diabetes"), relation.DateYMD(2008, 1, 2)},
		},
		Updates: []RowUpdate{{Row: 2, Vals: relation.Row{
			relation.Str("Bob"), relation.Str("Anne"), relation.Str("DR"), relation.Str("flu"), relation.DateYMD(2007, 8, 10)}}},
	}
	next, ch, err := d.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	if dump(base) != before {
		t.Fatal("Apply mutated the old version")
	}
	if next.NumRows() != 6 || next.Get(2, "disease").S != "flu" || next.Get(5, "patient").S != "Zoe" {
		t.Fatalf("next = %v", next.Rows)
	}
	if ch.Appended != 1 || len(ch.Updated) != 1 || ch.Updated[0] != 2 || ch.Rebuilt {
		t.Fatalf("change = %+v", ch)
	}
	// Deletes shift indices: the change degrades to Rebuilt.
	_, ch2, err := (&Delta{Deletes: []int{0, 3, 3}}).Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	if !ch2.Rebuilt {
		t.Fatalf("delete change = %+v, want Rebuilt", ch2)
	}
}

func TestDeltaApplyValidation(t *testing.T) {
	base := workload.DrugCostFixture()
	cases := []*Delta{
		{Updates: []RowUpdate{{Row: 99, Vals: relation.Row{relation.Str("X"), relation.Int(1)}}}},
		{Updates: []RowUpdate{{Row: 0, Vals: relation.Row{relation.Str("X")}}}},
		{Deletes: []int{-1}},
		{Inserts: []relation.Row{{relation.Str("X")}}},
	}
	for i, d := range cases {
		if _, _, err := d.Apply(base); err == nil {
			t.Errorf("case %d: invalid delta accepted", i)
		}
	}
}

// deltaPipeline exercises every delta-aware step kind: extract,
// row-wise cleanse, filter, left-append join, aggregate.
func deltaPipeline(hosp, agency *Source) *Pipeline {
	return &Pipeline{Name: "dp", Steps: []Step{
		NewExtract("e1", hosp, "prescriptions", ""),
		NewExtract("e2", agency, "drugcost", ""),
		NewCleanse("cl", "prescriptions", "rx_clean", "patient"),
		NewFilter("fl", "rx_clean", "rx_chronic", relation.ColEqStr("disease", "asthma")),
		NewJoin("j", "rx_clean", "drugcost",
			relation.Eq(relation.ColRefExpr("l.drug"), relation.ColRefExpr("r.drug")),
			relation.InnerJoin, "rx_cost"),
		NewAggregate("agg", "rx_cost", "by_disease",
			[]string{"disease"}, []relation.AggSpec{
				{Kind: relation.AggCount, As: "n"},
				{Kind: relation.AggSum, Col: "cost", As: "total"},
			}),
	}}
}

// runFreshMirror runs the pipeline from scratch against the given table
// versions and returns the staging dumps — the oracle an incremental
// refresh must match byte-for-byte.
func runFreshMirror(t *testing.T, rx, cost *relation.Table) map[string]string {
	t.Helper()
	hosp := NewSource("hospital", "hospital", rx)
	agency := NewSource("healthagency", "healthagency", cost)
	c := NewContext(nil)
	if _, err := deltaPipeline(hosp, agency).Run(c, false); err != nil {
		t.Fatal(err)
	}
	out := map[string]string{}
	for _, name := range []string{"prescriptions", "rx_clean", "rx_chronic", "rx_cost", "by_disease"} {
		tb, err := c.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		out[name] = dump(tb)
	}
	return out
}

// applyAndPropagate swaps the new table version into the source and
// pushes the change through the pipeline.
func applyAndPropagate(t *testing.T, p *Pipeline, c *Context, src *Source, d *Delta) DeltaResult {
	t.Helper()
	old, ok := src.Table(d.Table)
	if !ok {
		t.Fatalf("source has no table %q", d.Table)
	}
	next, ch, err := d.Apply(old)
	if err != nil {
		t.Fatal(err)
	}
	src.Tables[strings.ToLower(d.Table)] = next
	res, err := p.ApplyDelta(context.Background(), c,
		map[string]Change{src.Name + "." + d.Table: ch})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestApplyDeltaInsertOnlyConvergence: an insert-only delta must refresh
// every staging table to exactly what a fresh full run over the new data
// produces — values and lineage — while recomputing incrementally.
func TestApplyDeltaInsertOnlyConvergence(t *testing.T) {
	hosp := NewSource("hospital", "hospital", workload.PrescriptionsFixture())
	agency := NewSource("healthagency", "healthagency", workload.DrugCostFixture())
	p := deltaPipeline(hosp, agency)
	c := NewContext(nil)
	c.Metrics = obs.New()
	if _, err := p.Run(c, false); err != nil {
		t.Fatal(err)
	}

	ins := func(pat, drug, dis string) *Delta {
		return &Delta{Source: "hospital", Table: "prescriptions", Inserts: []relation.Row{
			{relation.Str("  " + pat + " "), relation.Str("Luis"), relation.Str(drug), relation.Str(dis), relation.DateYMD(2008, 5, 1)},
		}}
	}
	// First delta: the aggregate rebuilds its retained state (a full Run
	// drops it); everything else touched is incremental, and the drugcost
	// extract — whose input never changed — is untouched.
	res1 := applyAndPropagate(t, p, c, hosp, ins("Dana", "DR", "asthma"))
	if res1.StepsIncremental != 4 || res1.StepsRebuilt != 1 || res1.StepsUntouched != 1 {
		t.Fatalf("first delta: incremental=%d rebuilt=%d untouched=%d",
			res1.StepsIncremental, res1.StepsRebuilt, res1.StepsUntouched)
	}
	// Second delta: the retained aggregate state is live — every touched
	// step is now incremental.
	res2 := applyAndPropagate(t, p, c, hosp, ins("Evan", "DM", "diabetes"))
	if res2.StepsIncremental != 5 || res2.StepsRebuilt != 0 || res2.StepsUntouched != 1 {
		t.Fatalf("second delta: incremental=%d rebuilt=%d untouched=%d",
			res2.StepsIncremental, res2.StepsRebuilt, res2.StepsUntouched)
	}

	rx, _ := hosp.Table("prescriptions")
	want := runFreshMirror(t, rx, workload.DrugCostFixture())
	for name, w := range want {
		got, err := c.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if dump(got) != w {
			t.Errorf("%s diverges from full rebuild:\nincremental:\n%s\nfull:\n%s", name, dump(got), w)
		}
	}
	if got := c.Metrics.Counter("etl.deltas").Value(); got != 2 {
		t.Errorf("etl.deltas = %d", got)
	}
}

// TestApplyDeltaUpdateConvergence: in-place updates splice through
// row-wise steps and force reruns where positions cannot be trusted; the
// result must still match a full rebuild exactly.
func TestApplyDeltaUpdateConvergence(t *testing.T) {
	hosp := NewSource("hospital", "hospital", workload.PrescriptionsFixture())
	agency := NewSource("healthagency", "healthagency", workload.DrugCostFixture())
	p := deltaPipeline(hosp, agency)
	c := NewContext(nil)
	if _, err := p.Run(c, false); err != nil {
		t.Fatal(err)
	}

	d := &Delta{Source: "hospital", Table: "prescriptions",
		Updates: []RowUpdate{{Row: 1, Vals: relation.Row{
			relation.Str(" chris  "), relation.Str("Anne"), relation.Str("DR"), relation.Str("asthma"), relation.DateYMD(2007, 3, 10)}}},
		Inserts: []relation.Row{
			{relation.Str("Fay"), relation.Str("Mark"), relation.Str("DV"), relation.Str("HIV"), relation.DateYMD(2008, 6, 6)},
		},
	}
	applyAndPropagate(t, p, c, hosp, d)

	rx, _ := hosp.Table("prescriptions")
	want := runFreshMirror(t, rx, workload.DrugCostFixture())
	for name, w := range want {
		got, err := c.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if dump(got) != w {
			t.Errorf("%s diverges from full rebuild:\nincremental:\n%s\nfull:\n%s", name, dump(got), w)
		}
	}
}

// TestApplyDeltaDeleteConvergence: deletes degrade to per-step rebuilds
// but must converge all the same.
func TestApplyDeltaDeleteConvergence(t *testing.T) {
	hosp := NewSource("hospital", "hospital", workload.PrescriptionsFixture())
	agency := NewSource("healthagency", "healthagency", workload.DrugCostFixture())
	p := deltaPipeline(hosp, agency)
	c := NewContext(nil)
	if _, err := p.Run(c, false); err != nil {
		t.Fatal(err)
	}
	applyAndPropagate(t, p, c, hosp,
		&Delta{Source: "hospital", Table: "prescriptions", Deletes: []int{0, 4}})

	rx, _ := hosp.Table("prescriptions")
	if rx.NumRows() != 3 {
		t.Fatalf("rows after delete = %d", rx.NumRows())
	}
	want := runFreshMirror(t, rx, workload.DrugCostFixture())
	for name, w := range want {
		got, err := c.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if dump(got) != w {
			t.Errorf("%s diverges from full rebuild:\nincremental:\n%s\nfull:\n%s", name, dump(got), w)
		}
	}
}

// TestApplyDeltaEntityResolution: appended and updated rows re-resolve
// against the unchanged canonical table; the spliced output matches a
// fresh resolution of the whole input.
func TestApplyDeltaEntityResolution(t *testing.T) {
	canon := relation.NewBase("residents", relation.NewSchema(relation.Col("patient", relation.TString)))
	for _, n := range []string{"Alice Rossi", "Bruno Verdi", "Carla Bianchi"} {
		canon.AppendVals(relation.Str(n))
	}
	mkDirty := func() *relation.Table {
		dirty := relation.NewBase("familydoctor", relation.NewSchema(
			relation.Col("patient", relation.TString),
			relation.Col("doctor", relation.TString)))
		dirty.AppendVals(relation.Str("Alice Rosi"), relation.Str("Dr. A"))
		dirty.AppendVals(relation.Str("BRUNO verdi"), relation.Str("Dr. B"))
		return dirty
	}
	fam := NewSource("familydoctors", "familydoctors", mkDirty())
	canonSrc := NewSource("municipality", "municipality", canon)
	p := &Pipeline{Steps: []Step{
		NewExtract("e1", fam, "familydoctor", ""),
		NewExtract("e2", canonSrc, "residents", ""),
		NewEntityResolution("er", "familydoctor", "patient", "residents", "patient",
			"familydoctors", 0.9, "resolved"),
	}}
	c := NewContext(nil)
	if _, err := p.Run(c, false); err != nil {
		t.Fatal(err)
	}

	d := &Delta{Source: "familydoctors", Table: "familydoctor",
		Inserts: []relation.Row{{relation.Str("carla BIANCHI"), relation.Str("Dr. C")}},
		Updates: []RowUpdate{{Row: 0, Vals: relation.Row{relation.Str("alice rossi"), relation.Str("Dr. A2")}}},
	}
	res := applyAndPropagate(t, p, c, fam, d)
	if res.StepsIncremental != 2 || res.StepsRebuilt != 0 {
		t.Fatalf("res = %+v", res)
	}
	out, err := c.Get("resolved")
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"Alice Rossi", "Bruno Verdi", "Carla Bianchi"} {
		if got := out.Get(i, "patient").S; got != want {
			t.Errorf("row %d = %q, want %q", i, got, want)
		}
	}
	if out.Get(0, "doctor").S != "Dr. A2" {
		t.Errorf("updated doctor = %q", out.Get(0, "doctor").S)
	}
}

// TestApplyDeltaAtomicRollback: a fault injected at the etl.delta site
// aborts the application and restores the staging area exactly; the
// retried delta then lands.
func TestApplyDeltaAtomicRollback(t *testing.T) {
	hosp := NewSource("hospital", "hospital", workload.PrescriptionsFixture())
	agency := NewSource("healthagency", "healthagency", workload.DrugCostFixture())
	p := deltaPipeline(hosp, agency)
	c := NewContext(nil)
	c.Metrics = obs.New()
	if _, err := p.Run(c, false); err != nil {
		t.Fatal(err)
	}
	before := map[string]string{}
	for name := range c.Staging {
		before[name] = dump(c.Staging[name])
	}

	fi := fault.NewInjector(9)
	fi.Enable(fault.SiteETLDelta, fault.SiteConfig{ErrorRate: 1, Times: 1})
	c.Faults = fi

	old, _ := hosp.Table("prescriptions")
	d := &Delta{Source: "hospital", Table: "prescriptions", Inserts: []relation.Row{
		{relation.Str("Gil"), relation.Str("Anne"), relation.Str("DH"), relation.Str("HIV"), relation.DateYMD(2008, 7, 7)},
	}}
	next, ch, err := d.Apply(old)
	if err != nil {
		t.Fatal(err)
	}
	hosp.Tables["prescriptions"] = next
	changes := map[string]Change{"hospital.prescriptions": ch}

	_, derr := p.ApplyDelta(context.Background(), c, changes)
	if !errors.Is(derr, fault.ErrInjected) {
		t.Fatalf("want injected error, got %v", derr)
	}
	if len(c.Staging) != len(before) {
		t.Fatalf("staging size changed: %d != %d", len(c.Staging), len(before))
	}
	for name, w := range before {
		if dump(c.Staging[name]) != w {
			t.Errorf("staging %q not rolled back", name)
		}
	}
	// The fault budget is spent; the retry applies cleanly and converges.
	if _, err := p.ApplyDelta(context.Background(), c, changes); err != nil {
		t.Fatal(err)
	}
	want := runFreshMirror(t, next, workload.DrugCostFixture())
	for name, w := range want {
		got, err := c.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if dump(got) != w {
			t.Errorf("%s diverges after rollback+retry", name)
		}
	}
}

// TestApplyDeltaViolationRollsBack: a join permission revoked between
// the full run and the delta surfaces as a violation and rolls back.
func TestApplyDeltaViolationRollsBack(t *testing.T) {
	hosp := NewSource("hospital", "hospital", workload.PrescriptionsFixture())
	agency := NewSource("healthagency", "healthagency", workload.DrugCostFixture())
	guard := &flipGuard{}
	p := deltaPipeline(hosp, agency)
	c := NewContext(guard)
	if _, err := p.Run(c, false); err != nil {
		t.Fatal(err)
	}
	joinedBefore, _ := c.Get("rx_cost")
	want := dump(joinedBefore)

	guard.deny = true
	old, _ := hosp.Table("prescriptions")
	d := &Delta{Source: "hospital", Table: "prescriptions", Inserts: []relation.Row{
		{relation.Str("Hal"), relation.Str("Mark"), relation.Str("DR"), relation.Str("asthma"), relation.DateYMD(2008, 8, 8)},
	}}
	next, ch, _ := d.Apply(old)
	hosp.Tables["prescriptions"] = next
	_, derr := p.ApplyDelta(context.Background(), c, map[string]Change{"hospital.prescriptions": ch})
	if !IsViolation(derr) {
		t.Fatalf("want violation, got %v", derr)
	}
	after, _ := c.Get("rx_cost")
	if dump(after) != want {
		t.Fatal("violating delta leaked into staging")
	}
}

// flipGuard allows everything until deny is set.
type flipGuard struct{ deny bool }

func (g *flipGuard) CheckJoin(l, r string) error {
	if g.deny {
		return fmt.Errorf("join %s-%s revoked", l, r)
	}
	return nil
}
func (g *flipGuard) CheckIntegration(string, string) error { return nil }
