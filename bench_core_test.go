// Core performance-trajectory benchmarks: every hot path of the
// relational kernel (join, render, ETL, rewrite+execute) at three scales,
// under both execution modes in the same run, plus the nested-loop join
// baseline and the compiled residual-program render. cmd/benchjson
// parses the output of
//
//	go test -run '^$' -bench '^BenchmarkCore' -benchmem
//
// into BENCH_core.json with per-path mode-vs-reference speedups; the CI
// bench job archives it and benchstat gates regressions.
package plabi

import (
	"fmt"
	"testing"

	"plabi/internal/core"
	"plabi/internal/enforce"
	"plabi/internal/relation"
	"plabi/internal/report"
	"plabi/internal/workload"
)

// coreScales are the row counts (prescriptions) each benchmark family
// runs at.
var coreScales = []int{1000, 10000, 100000}

// execModes pairs the sub-benchmark label with the mode it selects. The
// "row" rows are the seed's row-at-a-time reference numbers, recorded in
// the same run the vectorized numbers are, so speedups never compare
// across machines or commits.
var execModes = []struct {
	name string
	mode relation.ExecMode
}{
	{"vectorized", relation.ExecVectorized},
	{"row", relation.ExecRowAtATime},
}

// withMode runs fn as a sub-benchmark under each execution mode.
func withMode(b *testing.B, fn func(b *testing.B)) {
	b.Helper()
	for _, m := range execModes {
		b.Run("mode="+m.name, func(b *testing.B) {
			prev := relation.SetExecMode(m.mode)
			defer relation.SetExecMode(prev)
			fn(b)
		})
	}
}

// BenchmarkCoreJoin measures the equi-join prescriptions ⋈ drugcost with
// full lineage propagation: the vectorized interned hash join against the
// reference string-keyed hash path.
func BenchmarkCoreJoin(b *testing.B) {
	for _, n := range coreScales {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			ds := benchDataset(b, n)
			l := relation.Rename(ds.Prescriptions, "p")
			r := relation.Rename(ds.DrugCost, "c")
			pred := relation.Eq(relation.ColRefExpr("p.drug"), relation.ColRefExpr("c.drug"))
			withMode(b, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					out, err := relation.Join(l, r, pred, relation.InnerJoin)
					if err != nil {
						b.Fatal(err)
					}
					if out.NumRows() == 0 {
						b.Fatal("empty join")
					}
				}
			})
		})
	}
}

// BenchmarkCoreJoinNested is the nested-loop baseline for the same join —
// the semantics every hash plan is verified against, and the
// like-for-like denominator for the 100k speedup claim.
func BenchmarkCoreJoinNested(b *testing.B) {
	for _, n := range coreScales {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			ds := benchDataset(b, n)
			l := relation.Rename(ds.Prescriptions, "p")
			r := relation.Rename(ds.DrugCost, "c")
			pred := relation.Eq(relation.ColRefExpr("p.drug"), relation.ColRefExpr("c.drug"))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out, err := relation.NestedLoopJoin(l, r, pred, relation.InnerJoin)
				if err != nil {
					b.Fatal(err)
				}
				if out.NumRows() == 0 {
					b.Fatal("empty join")
				}
			}
		})
	}
}

// benchEngineAt builds the full healthcare engine at the given
// prescription count (ETL included) under the current execution mode.
func benchEngineAt(b *testing.B, n int) *core.Engine {
	b.Helper()
	cfg := workload.DefaultConfig(42)
	cfg.Prescriptions = n
	cfg.Patients = n / 10
	cfg.LabResults = n / 10
	e, _, err := core.BuildHealthcareEngine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return e
}

// BenchmarkCoreRender measures the full enforced render of the flagship
// drug-consumption report: SQL execution over the wide staging table,
// aggregation with lineage, threshold enforcement on distinct-patient
// support, and audit logging.
func BenchmarkCoreRender(b *testing.B) {
	for _, n := range coreScales {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			withMode(b, func(b *testing.B) {
				e := benchEngineAt(b, n)
				consumer := report.Consumer{Name: "bench", Role: "analyst", Purpose: "quality"}
				b.ResetTimer()
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					enf, err := e.Render("drug-consumption", consumer)
					if err != nil {
						b.Fatal(err)
					}
					if enf.Table.NumRows() == 0 {
						b.Fatal("all rows suppressed")
					}
				}
			})
		})
	}
}

// BenchmarkCoreRenderCompiled measures the same enforced render through
// the compiled residual program (relation.ExecCompiled): policy
// composition specialized at plan-build time, and — because the plan
// generations pin the catalog — the enforced result constant-folded on
// the first render and replayed (deep-copied) on every subsequent one.
// The steady-state ratio against BenchmarkCoreRender's vectorized mode
// is the compiled-over-vectorized floor cmd/benchjson enforces.
func BenchmarkCoreRenderCompiled(b *testing.B) {
	for _, n := range coreScales {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.Run("mode=compiled", func(b *testing.B) {
				prev := relation.SetExecMode(relation.ExecCompiled)
				defer relation.SetExecMode(prev)
				e := benchEngineAt(b, n)
				consumer := report.Consumer{Name: "bench", Role: "analyst", Purpose: "quality"}
				b.ResetTimer()
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					enf, err := e.Render("drug-consumption", consumer)
					if err != nil {
						b.Fatal(err)
					}
					if enf.Table.NumRows() == 0 {
						b.Fatal("all rows suppressed")
					}
				}
			})
		})
	}
}

// BenchmarkCoreETL measures the guarded ETL pipeline: extraction,
// cleansing, entity resolution against the municipal registry, and the
// two permitted joins into rx_wide.
func BenchmarkCoreETL(b *testing.B) {
	for _, n := range coreScales {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			withMode(b, func(b *testing.B) {
				e := benchEngineAt(b, n)
				p := core.HealthcarePipeline(e)
				b.ResetTimer()
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := e.RunETL(p, false); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkCoreRewrite measures VPD-style rewrite plus execution of the
// rewritten query — the path where predicate pushdown lets privacy
// filters cut the input before the join materializes.
func BenchmarkCoreRewrite(b *testing.B) {
	const q = "SELECT p.drug, c.cost FROM prescriptions p JOIN drugcost c ON p.drug = c.drug WHERE p.disease = 'flu'"
	for _, n := range coreScales {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			withMode(b, func(b *testing.B) {
				e := benchEngineAt(b, n)
				rw := enforce.NewQueryRewriter(e.Policies, e.Catalog)
				b.ResetTimer()
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					rewritten, _, err := rw.RewriteSQL(q, "auditor", "quality")
					if err != nil {
						b.Fatal(err)
					}
					out, err := e.Catalog.Query(rewritten)
					if err != nil {
						b.Fatal(err)
					}
					if out.NumRows() == 0 {
						b.Fatal("rewritten query returned no rows")
					}
				}
			})
		})
	}
}
