// Audit: the paper's enforcement-and-auditing challenge (§2 iv) —
// PLA-derived compliance tests catch a non-compliant implementation
// before deployment, and a challenged report cell is resolved to its
// source cells, transformations, and governing agreements.
package main

import (
	"context"
	_ "embed"
	"fmt"
	"log"
	"os"

	"plabi"
	"plabi/internal/workload"
)

// The agreements governing the audited deployment, kept as a standalone
// lintable DSL file (`plalint policy.pla`).
//
//go:embed policy.pla
var policyDSL string

func main() {
	// Stream the audit trail to stderr-free storage as it is written; the
	// in-memory log stays queryable.
	engine := plabi.Open()
	engine.AddSource(plabi.NewSource("hospital", "hospital", workload.Fig4Prescriptions(1)))
	if err := engine.AddPLAs(policyDSL); err != nil {
		log.Fatal(err)
	}
	def := &plabi.ReportDefinition{ID: "drug-consumption", Title: "Drug consumption",
		Query: "SELECT drug, COUNT(*) AS consumption FROM prescriptions GROUP BY drug ORDER BY drug"}
	if err := engine.DefineReport(def); err != nil {
		log.Fatal(err)
	}
	consumer := plabi.Consumer{Name: "ana", Role: "analyst", Purpose: "quality"}

	// 1. Generate the compliance suite from the agreed PLAs (§6:
	// "policies tested before they are put in operation").
	tests, err := engine.ComplianceSuite("drug-consumption", consumer)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d compliance tests from the PLAs\n", len(tests))

	// 2. A buggy implementation (raw render, threshold forgotten) fails.
	raw, err := engine.RenderUnenforced("drug-consumption")
	if err != nil {
		log.Fatal(err)
	}
	if fails := plabi.RunComplianceTests(tests, raw); len(fails) > 0 {
		fmt.Println("unenforced output DETECTED as non-compliant:")
		for _, f := range fails {
			fmt.Println("  FAIL:", f)
		}
	}

	// 3. The enforced output passes.
	enf, err := engine.Render(context.Background(), "drug-consumption", consumer)
	if err != nil {
		log.Fatal(err)
	}
	if fails := plabi.RunComplianceTests(tests, enf.Table); len(fails) == 0 {
		fmt.Println("enforced output passes the suite")
	}
	fmt.Println()
	fmt.Println(plabi.FormatTable("Drug consumption (enforced)", enf.Table))

	// 4. Dispute resolution: the DR count is challenged — trace it.
	for i := 0; i < enf.Table.NumRows(); i++ {
		if enf.Table.Get(i, "drug").S != "DR" {
			continue
		}
		dispute, err := engine.ResolveDispute(enf.Table, i, "consumption")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(dispute)
	}

	// 5. The audit trail is exportable as JSONL for third-party auditors.
	fmt.Printf("audit events recorded: %d (JSONL follows)\n", engine.Audit().Len())
	if err := engine.Audit().WriteJSONL(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
