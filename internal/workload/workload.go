// Package workload generates the deterministic synthetic healthcare data
// the reproduction runs on: multiple sources (hospital, family doctors,
// laboratory, municipality, health agency) with overlapping entities and
// injected dirty duplicates for entity resolution, plus the paper's
// literal example tables (Figs. 2b, 3b, 4b) as golden fixtures.
//
// The paper's evidence is field experience with Trentino healthcare
// deployments; per the substitution rule, this generator reproduces the
// *structure* of that scenario — multiple owners, sensitive attributes,
// per-owner agreements, aggregate reporting — with data whose absolute
// values are immaterial to the methodology.
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"plabi/internal/relation"
)

// Config parameterizes the generator. All randomness derives from Seed.
type Config struct {
	Seed          int64
	Patients      int
	Doctors       int
	Drugs         int
	Prescriptions int
	LabResults    int
	// DirtyRate is the fraction of cross-source patient references that
	// get a typo/formatting variant, exercising entity resolution.
	DirtyRate float64
	StartYear int
	Years     int
}

// DefaultConfig returns a laptop-scale configuration.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:          seed,
		Patients:      500,
		Doctors:       40,
		Drugs:         25,
		Prescriptions: 5000,
		LabResults:    1500,
		DirtyRate:     0.08,
		StartYear:     2006,
		Years:         3,
	}
}

// Dataset is the generated multi-source scenario of Fig. 1. Each table is
// owned by a different institution; the owner is the party whose PLA
// governs it.
type Dataset struct {
	// Prescriptions (owner: hospital): patient, doctor, drug, disease, date.
	Prescriptions *relation.Table
	// FamilyDoctor (owner: familydoctors): patient -> family doctor.
	FamilyDoctor *relation.Table
	// DrugCost (owner: healthagency): drug -> cost.
	DrugCost *relation.Table
	// LabResults (owner: laboratory): patient, test, result, date.
	LabResults *relation.Table
	// Residents (owner: municipality): patient, age, zip, municipality.
	Residents *relation.Table
	// PatientNames is the clean canonical list of patient names.
	PatientNames []string
	// Diseases is the disease vocabulary in use.
	Diseases []string
	// DrugNames is the drug vocabulary in use.
	DrugNames []string
}

// Owners maps each generated table name to its owning institution.
func Owners() map[string]string {
	return map[string]string{
		"prescriptions": "hospital",
		"familydoctor":  "familydoctors",
		"drugcost":      "healthagency",
		"labresults":    "laboratory",
		"residents":     "municipality",
	}
}

var firstNames = []string{
	"Alice", "Bob", "Chris", "Math", "Anna", "Bruno", "Carla", "Dario",
	"Elena", "Fabio", "Gina", "Hugo", "Ivan", "Julia", "Karl", "Laura",
	"Marco", "Nina", "Oscar", "Paola", "Rita", "Sergio", "Teresa", "Ugo",
	"Vera", "Walter", "Ada", "Boris", "Clara", "Dino", "Erica", "Franco",
	"Greta", "Heidi", "Igor", "Jana", "Kurt", "Lia", "Mara", "Nico",
}

var lastNames = []string{
	"Rossi", "Bianchi", "Verdi", "Ferrari", "Esposito", "Romano", "Ricci",
	"Marino", "Greco", "Bruno", "Gallo", "Conti", "Costa", "Fontana",
	"Moretti", "Barbieri", "Lombardi", "Giordano", "Rizzo", "Villa",
	"Serra", "Longo", "Leone", "Martini", "Valentini", "Pellegrini",
	"Ferri", "Bellini", "Basile", "Riva", "Neri", "Monti", "Fiore",
	"Grassi", "Sala", "Testa", "Carbone", "Mancini", "Orlando", "Sanna",
}

var diseaseDrugMap = map[string][]string{
	"HIV":          {"DH", "DV"},
	"asthma":       {"DR"},
	"diabetes":     {"DM"},
	"flu":          {"DF"},
	"hypertension": {"DP"},
	"bronchitis":   {"DR", "DB"},
	"hepatitis":    {"DE"},
	"arrhythmia":   {"DA"},
	"obesity":      {"DO"},
}

// DiseaseList returns the disease vocabulary in deterministic order.
func DiseaseList() []string {
	return []string{"HIV", "asthma", "diabetes", "flu", "hypertension",
		"bronchitis", "hepatitis", "arrhythmia", "obesity"}
}

// Validate reports the first way the configuration is unusable.
func (cfg Config) Validate() error {
	switch {
	case cfg.Patients <= 0:
		return fmt.Errorf("workload: config needs Patients > 0, got %d", cfg.Patients)
	case cfg.Doctors <= 0:
		return fmt.Errorf("workload: config needs Doctors > 0, got %d", cfg.Doctors)
	case cfg.Prescriptions < 0:
		return fmt.Errorf("workload: config needs Prescriptions >= 0, got %d", cfg.Prescriptions)
	case cfg.LabResults < 0:
		return fmt.Errorf("workload: config needs LabResults >= 0, got %d", cfg.LabResults)
	case cfg.DirtyRate < 0 || cfg.DirtyRate > 1:
		return fmt.Errorf("workload: config needs DirtyRate in [0, 1], got %g", cfg.DirtyRate)
	}
	return nil
}

// Generate builds the full multi-source dataset for the configuration,
// rejecting unusable configurations instead of panicking mid-build.
func Generate(cfg Config) (*Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ds := &Dataset{Diseases: DiseaseList()}

	// Canonical patient names: unique first+last combinations.
	seen := map[string]bool{}
	for len(ds.PatientNames) < cfg.Patients {
		n := firstNames[rng.Intn(len(firstNames))] + " " + lastNames[rng.Intn(len(lastNames))]
		if seen[n] {
			n = fmt.Sprintf("%s %d", n, len(ds.PatientNames))
		}
		seen[n] = true
		ds.PatientNames = append(ds.PatientNames, n)
	}

	doctors := make([]string, cfg.Doctors)
	for i := range doctors {
		doctors[i] = "Dr. " + lastNames[(i*7)%len(lastNames)] + fmt.Sprintf(" %c", 'A'+i%26)
	}

	// Drug vocabulary: the disease-linked drugs plus generated fillers.
	drugSet := map[string]bool{}
	for _, disease := range DiseaseList() {
		for _, d := range diseaseDrugMap[disease] {
			if !drugSet[d] {
				drugSet[d] = true
				ds.DrugNames = append(ds.DrugNames, d)
			}
		}
	}
	for i := 0; len(ds.DrugNames) < cfg.Drugs; i++ {
		d := fmt.Sprintf("DX%02d", i)
		drugSet[d] = true
		ds.DrugNames = append(ds.DrugNames, d)
	}

	// Assign each patient a (stable) disease profile and demographics.
	patientDisease := make([]string, cfg.Patients)
	for i := range patientDisease {
		patientDisease[i] = ds.Diseases[rng.Intn(len(ds.Diseases))]
	}

	// prescriptions (hospital).
	pres := relation.NewBase("prescriptions", relation.NewSchema(
		relation.Col("rx_id", relation.TInt),
		relation.Col("patient", relation.TString),
		relation.Col("doctor", relation.TString),
		relation.Col("drug", relation.TString),
		relation.Col("disease", relation.TString),
		relation.Col("date", relation.TDate),
	))
	start := time.Date(cfg.StartYear, 1, 1, 0, 0, 0, 0, time.UTC)
	days := cfg.Years * 365
	if days <= 0 {
		days = 365
	}
	for i := 0; i < cfg.Prescriptions; i++ {
		pi := rng.Intn(cfg.Patients)
		disease := patientDisease[pi]
		var drug string
		if opts := diseaseDrugMap[disease]; len(opts) > 0 && rng.Float64() < 0.9 {
			drug = opts[rng.Intn(len(opts))]
		} else {
			drug = ds.DrugNames[rng.Intn(len(ds.DrugNames))]
		}
		doctor := relation.Str(doctors[rng.Intn(cfg.Doctors)])
		if rng.Float64() < 0.02 {
			doctor = relation.Null() // missing values, as in Fig. 2b
		}
		pres.AppendVals(
			relation.Int(int64(i+1)),
			relation.Str(ds.PatientNames[pi]),
			doctor,
			relation.Str(drug),
			relation.Str(disease),
			relation.Date(start.AddDate(0, 0, rng.Intn(days))),
		)
	}
	ds.Prescriptions = pres

	// familydoctor (family doctors): every patient has one; a fraction of
	// names arrive dirty to exercise entity resolution.
	fd := relation.NewBase("familydoctor", relation.NewSchema(
		relation.Col("patient", relation.TString),
		relation.Col("doctor", relation.TString),
	))
	for i, name := range ds.PatientNames {
		out := name
		if rng.Float64() < cfg.DirtyRate {
			out = Dirty(name, rng)
		}
		fd.AppendVals(relation.Str(out), relation.Str(doctors[i%cfg.Doctors]))
	}
	ds.FamilyDoctor = fd

	// drugcost (health agency).
	dc := relation.NewBase("drugcost", relation.NewSchema(
		relation.Col("drug", relation.TString),
		relation.Col("cost", relation.TInt),
	))
	for _, d := range ds.DrugNames {
		dc.AppendVals(relation.Str(d), relation.Int(int64(5+rng.Intn(95))))
	}
	ds.DrugCost = dc

	// labresults (laboratory).
	lr := relation.NewBase("labresults", relation.NewSchema(
		relation.Col("lab_id", relation.TInt),
		relation.Col("patient", relation.TString),
		relation.Col("test", relation.TString),
		relation.Col("result", relation.TString),
		relation.Col("date", relation.TDate),
	))
	tests := []string{"blood", "urine", "xray", "mri", "biopsy"}
	results := []string{"negative", "positive", "inconclusive"}
	for i := 0; i < cfg.LabResults; i++ {
		pi := rng.Intn(cfg.Patients)
		name := ds.PatientNames[pi]
		if rng.Float64() < cfg.DirtyRate {
			name = Dirty(name, rng)
		}
		lr.AppendVals(
			relation.Int(int64(i+1)),
			relation.Str(name),
			relation.Str(tests[rng.Intn(len(tests))]),
			relation.Str(results[rng.Intn(len(results))]),
			relation.Date(start.AddDate(0, 0, rng.Intn(days))),
		)
	}
	ds.LabResults = lr

	// residents (municipality).
	res := relation.NewBase("residents", relation.NewSchema(
		relation.Col("patient", relation.TString),
		relation.Col("age", relation.TInt),
		relation.Col("zip", relation.TString),
		relation.Col("municipality", relation.TString),
	))
	towns := []string{"Trento", "Rovereto", "Pergine", "Arco", "Riva", "Cles", "Borgo", "Levico"}
	for i, name := range ds.PatientNames {
		res.AppendVals(
			relation.Str(name),
			relation.Int(int64(18+rng.Intn(80))),
			relation.Str(fmt.Sprintf("38%03d", rng.Intn(200))),
			relation.Str(towns[i%len(towns)]),
		)
	}
	ds.Residents = res
	return ds, nil
}

// Dirty injects one realistic data-quality defect into a name: a swapped
// letter pair, a dropped letter, a doubled letter, or a case change.
func Dirty(name string, rng *rand.Rand) string {
	if len(name) < 4 {
		return name
	}
	b := []byte(name)
	pos := 1 + rng.Intn(len(b)-2)
	switch rng.Intn(4) {
	case 0: // swap adjacent
		b[pos], b[pos-1] = b[pos-1], b[pos]
		return string(b)
	case 1: // drop
		return string(b[:pos]) + string(b[pos+1:])
	case 2: // double
		return string(b[:pos]) + string(b[pos]) + string(b[pos:])
	default: // case flip
		c := b[pos]
		switch {
		case c >= 'a' && c <= 'z':
			b[pos] = c - 32
		case c >= 'A' && c <= 'Z':
			b[pos] = c + 32
		}
		return string(b)
	}
}
