package sql

import (
	"strings"

	"plabi/internal/relation"
)

// Statement is a parsed SQL statement: either *SelectStmt or
// *CreateViewStmt.
type Statement interface{ stmt() }

// AggCall is an aggregate invocation in a select list or HAVING clause.
type AggCall struct {
	Kind     relation.AggKind
	Arg      relation.Expr // nil for COUNT(*)
	Distinct bool
}

// String renders the aggregate in SQL syntax.
func (a *AggCall) String() string {
	name := a.Kind.String()
	if a.Kind == relation.AggCountDistinct {
		name = "COUNT"
	}
	arg := "*"
	if a.Arg != nil {
		arg = a.Arg.String()
	}
	if a.Distinct || a.Kind == relation.AggCountDistinct {
		arg = "DISTINCT " + arg
	}
	return name + "(" + arg + ")"
}

// SelectItem is one output column of a SELECT: either a scalar expression
// or an aggregate call, with an optional alias. Star is a bare "*".
type SelectItem struct {
	Star  bool
	Expr  relation.Expr
	Agg   *AggCall
	Alias string
}

// OutName computes the item's output column name.
func (it SelectItem) OutName() string {
	if it.Alias != "" {
		return it.Alias
	}
	if it.Agg != nil {
		return strings.ToLower(it.Agg.Kind.String())
	}
	if c, ok := it.Expr.(*relation.ColExpr); ok {
		name := c.Name
		if i := strings.LastIndexByte(name, '.'); i >= 0 {
			name = name[i+1:]
		}
		return name
	}
	return it.Expr.String()
}

// TableRef is one relation in the FROM clause.
type TableRef struct {
	Name  string
	Alias string // defaults to Name
}

// EffName returns the alias if set, otherwise the table name.
func (t TableRef) EffName() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// JoinClause is one JOIN ... ON ... step following the first table.
type JoinClause struct {
	Kind  relation.JoinKind
	Table TableRef
	On    relation.Expr
}

// OrderItem is one ORDER BY term; the column is an output-column name.
type OrderItem struct {
	Col  string
	Desc bool
}

// SelectStmt is a parsed SELECT.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     TableRef
	Joins    []JoinClause
	Where    relation.Expr
	GroupBy  []relation.Expr
	Having   relation.Expr // evaluated against the grouped output schema
	OrderBy  []OrderItem
	Limit    int // -1 means no limit
}

func (*SelectStmt) stmt() {}

// HasAggregates reports whether any select item is an aggregate.
func (s *SelectStmt) HasAggregates() bool {
	for _, it := range s.Items {
		if it.Agg != nil {
			return true
		}
	}
	return false
}

// String renders the statement back to SQL (canonical form, used in tests
// and in PLA audit evidence).
func (s *SelectStmt) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		switch {
		case it.Star:
			b.WriteString("*")
		case it.Agg != nil:
			b.WriteString(it.Agg.String())
		default:
			b.WriteString(it.Expr.String())
		}
		if it.Alias != "" {
			b.WriteString(" AS " + relation.QuoteIdent(it.Alias))
		}
	}
	b.WriteString(" FROM " + relation.QuoteIdent(s.From.Name))
	if s.From.Alias != "" {
		b.WriteString(" AS " + relation.QuoteIdent(s.From.Alias))
	}
	for _, j := range s.Joins {
		if j.Kind == relation.LeftJoin {
			b.WriteString(" LEFT JOIN ")
		} else {
			b.WriteString(" JOIN ")
		}
		b.WriteString(relation.QuoteIdent(j.Table.Name))
		if j.Table.Alias != "" {
			b.WriteString(" AS " + relation.QuoteIdent(j.Table.Alias))
		}
		b.WriteString(" ON " + j.On.String())
	}
	if s.Where != nil {
		b.WriteString(" WHERE " + s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(g.String())
		}
	}
	if s.Having != nil {
		b.WriteString(" HAVING " + s.Having.String())
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(relation.QuoteIdent(o.Col))
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if s.Limit >= 0 {
		b.WriteString(" LIMIT ")
		b.WriteString(itoa(s.Limit))
	}
	return b.String()
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// CreateViewStmt is a parsed CREATE VIEW name AS SELECT ...
type CreateViewStmt struct {
	Name   string
	Select *SelectStmt
}

func (*CreateViewStmt) stmt() {}
