// Quickstart: the smallest end-to-end use of the library — one source
// table, one PLA elicited at the report level, one enforced report,
// driven entirely through the public plabi API.
package main

import (
	"context"
	_ "embed"
	"fmt"
	"log"

	"plabi"
	"plabi/internal/workload"
)

// The privacy agreement, in the PLA DSL, kept lintable as a standalone
// file (`plalint policy.pla`). The intensional condition reproduces the
// paper's §5 example: patient names are visible only where the
// supporting rows are not HIV-related.
//
//go:embed policy.pla
var policyDSL string

func main() {
	// 1. An engine and a data source (the paper's Fig. 2b table).
	engine := plabi.Open()
	engine.AddSource(plabi.NewSource("hospital", "hospital", workload.PrescriptionsFixture()))

	// 2. Register the agreement.
	if err := engine.AddPLAs(policyDSL); err != nil {
		log.Fatal(err)
	}

	// 3. A report over the source.
	err := engine.DefineReport(&plabi.ReportDefinition{
		ID:    "rx-list",
		Title: "Prescriptions",
		Query: "SELECT patient, drug, date FROM prescriptions ORDER BY date",
	})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Render for an analyst: enforcement happens on the report
	// itself, cell by cell, with provenance deciding the condition.
	enforced, err := engine.Render(context.Background(), "rx-list",
		plabi.Consumer{Name: "ana", Role: "analyst"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(plabi.FormatTable("Prescriptions (analyst view)", enforced.Table))
	fmt.Printf("cells masked: %d\n", enforced.MaskedCells)
	for _, d := range enforced.Decisions {
		fmt.Println("decision:", d)
	}
}
