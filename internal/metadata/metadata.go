// Package metadata implements the paper's source-level privacy metadata
// (§3, Fig. 2b): privacy information kept in tables completely separate
// from the data, bound to data rows either extensionally (a policies table
// joined on a key, as in the paper's Policies example) or intensionally —
// via generic predicates, so that a newly inserted row satisfying the
// predicate is automatically covered with no further registration
// (cf. Srivastava & Velegrakis, SIGMOD 2007 [21]).
package metadata

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"plabi/internal/relation"
)

// Association intensionally binds metadata to the rows of a data table
// that satisfy a predicate.
type Association struct {
	// Name identifies the association.
	Name string
	// Data is the data table the association ranges over.
	Data string
	// When selects the associated rows; nil associates every row.
	When relation.Expr
	// Metadata is the arbitrary payload attached to matching rows.
	Metadata map[string]relation.Value
	// PLARef optionally links the association to a PLA id.
	PLARef string
}

// Matches evaluates the association's predicate on one row.
func (a *Association) Matches(t *relation.Table, row int) (bool, error) {
	if !strings.EqualFold(a.Data, t.Name) {
		return false, nil
	}
	if a.When == nil {
		return true, nil
	}
	return relation.EvalPredicate(a.When, t.Rows[row], t.Schema)
}

// Store holds intensional associations and extensional keyed-policy
// lookups. It is safe for concurrent use.
type Store struct {
	mu     sync.RWMutex
	assocs []*Association
	keyed  []*KeyedMetadata
}

// NewStore returns an empty metadata store.
func NewStore() *Store { return &Store{} }

// AddAssociation registers an intensional association.
func (s *Store) AddAssociation(a *Association) error {
	if a.Name == "" || a.Data == "" {
		return fmt.Errorf("metadata: association needs a name and a data table")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.assocs {
		if e.Name == a.Name {
			return fmt.Errorf("metadata: duplicate association %q", a.Name)
		}
	}
	s.assocs = append(s.assocs, a)
	return nil
}

// KeyedMetadata binds a separate metadata table to data rows by joining a
// key column — the paper's extensional Policies table (Fig. 2b): one
// metadata row per patient.
type KeyedMetadata struct {
	// Name identifies the binding.
	Name string
	// Data is the data table; DataKey its join column.
	Data    string
	DataKey string
	// Meta is the metadata table; MetaKey its join column.
	Meta    *relation.Table
	MetaKey string
}

// AddKeyed registers an extensional keyed-metadata binding.
func (s *Store) AddKeyed(k *KeyedMetadata) error {
	if k.Meta == nil || k.Meta.Schema.Index(k.MetaKey) < 0 {
		return fmt.Errorf("metadata: keyed binding %q: bad metadata key %q", k.Name, k.MetaKey)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.keyed = append(s.keyed, k)
	return nil
}

// Tag is one piece of metadata attached to a row, with its origin.
type Tag struct {
	Source string // association or binding name
	PLARef string
	Key    string
	Value  relation.Value
}

// RowMetadata computes all metadata attached to row i of t: intensional
// associations whose predicate holds, plus keyed rows from extensional
// bindings. Tags are returned sorted by (source, key) for determinism.
func (s *Store) RowMetadata(t *relation.Table, i int) ([]Tag, error) {
	if i < 0 || i >= t.NumRows() {
		return nil, fmt.Errorf("metadata: row %d out of range", i)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	var tags []Tag
	for _, a := range s.assocs {
		ok, err := a.Matches(t, i)
		if err != nil {
			return nil, fmt.Errorf("metadata: association %q: %w", a.Name, err)
		}
		if !ok {
			continue
		}
		for k, v := range a.Metadata {
			tags = append(tags, Tag{Source: a.Name, PLARef: a.PLARef, Key: k, Value: v})
		}
		if len(a.Metadata) == 0 {
			tags = append(tags, Tag{Source: a.Name, PLARef: a.PLARef})
		}
	}
	for _, k := range s.keyed {
		if !strings.EqualFold(k.Data, t.Name) {
			continue
		}
		di := t.Schema.Index(k.DataKey)
		if di < 0 {
			continue
		}
		key := t.Rows[i][di]
		if key.IsNull() {
			continue
		}
		mi := k.Meta.Schema.Index(k.MetaKey)
		for r := 0; r < k.Meta.NumRows(); r++ {
			if !k.Meta.Rows[r][mi].Equal(key) {
				continue
			}
			for c, col := range k.Meta.Schema.Columns {
				if c == mi {
					continue
				}
				tags = append(tags, Tag{Source: k.Name, Key: col.Name, Value: k.Meta.Rows[r][c]})
			}
		}
	}
	sort.Slice(tags, func(a, b int) bool {
		if tags[a].Source != tags[b].Source {
			return tags[a].Source < tags[b].Source
		}
		return tags[a].Key < tags[b].Key
	})
	return tags, nil
}

// Lookup returns the value of one metadata key for a row, and whether any
// binding supplied it. When several bindings supply the same key, the
// most restrictive boolean wins (false beats true); otherwise the first in
// sort order is returned.
func (s *Store) Lookup(t *relation.Table, i int, key string) (relation.Value, bool, error) {
	tags, err := s.RowMetadata(t, i)
	if err != nil {
		return relation.Null(), false, err
	}
	var out relation.Value
	found := false
	for _, tag := range tags {
		if !strings.EqualFold(tag.Key, key) {
			continue
		}
		if !found {
			out = tag.Value
			found = true
			continue
		}
		if tag.Value.Kind == relation.TBool && out.Kind == relation.TBool && !tag.Value.B {
			out = tag.Value
		}
	}
	return out, found, nil
}

// MatchingRows returns the data rows of t covered by the named
// association — the "which rows does this policy govern" view used in
// elicitation discussions.
func (s *Store) MatchingRows(t *relation.Table, name string) ([]int, error) {
	s.mu.RLock()
	var assoc *Association
	for _, a := range s.assocs {
		if a.Name == name {
			assoc = a
			break
		}
	}
	s.mu.RUnlock()
	if assoc == nil {
		return nil, fmt.Errorf("metadata: unknown association %q", name)
	}
	var rows []int
	for i := range t.Rows {
		ok, err := assoc.Matches(t, i)
		if err != nil {
			return nil, err
		}
		if ok {
			rows = append(rows, i)
		}
	}
	return rows, nil
}

// Associations returns the registered intensional associations.
func (s *Store) Associations() []*Association {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]*Association(nil), s.assocs...)
}
