package policy

import (
	"strings"
	"testing"
)

// FuzzParseFile drives the PLA DSL scanner and parser with arbitrary
// documents. Invariants: the parser never panics, a successful parse
// yields non-nil agreements, and every parsed PLA's canonical rendering
// (String, the printer the elicitation tool ships) re-parses cleanly —
// otherwise saved agreements could not be loaded back.
func FuzzParseFile(f *testing.F) {
	seeds := []string{
		`pla "p1" { owner "hospital"; level source; scope "patients";
			allow attribute name purpose "treatment";
			deny attribute ssn; }`,
		`pla "thresholds" { owner "hospital"; level report; scope "drug-consumption";
			allow attribute drug;
			aggregate min 3 by patient; }`,
		`pla "anon" { owner "registry"; level interface;
			scope "residents";
			anonymize address with generalization; }`,
		`# comment only`,
		`pla "multi" { owner "a"; level etl; scope "x";
			allow join "t1" "t2" purpose "integration";
			allow integration beneficiary "b";
			retain 30; }`,
		`pla "roles" { owner "o"; level report; scope "s";
			allow attribute a role "analyst" purpose "quality"; }`,
		`pla "" {}`,
		`pla "unterminated { owner`,
		``,
		"pla \"x\" {\n\towner \"y\";\n}",
		"\x00\xfe\xff",
		strings.Repeat(`pla "p" { owner "o"; level source; scope "s"; } `, 8),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		plas, err := ParseFile(src)
		if err != nil {
			return
		}
		for _, p := range plas {
			if p == nil {
				t.Fatalf("nil PLA without error for %q", src)
			}
			rendered := p.String()
			if _, err := ParseFile(rendered); err != nil {
				t.Fatalf("rendering of parsed PLA does not re-parse: %q: %v", rendered, err)
			}
		}
	})
}
