// Package api is the Go client for the plabid policy-decision server.
// It speaks the versioned wire contract of plabi/api/v1: requests and
// responses are exactly the apiv1 types, and every non-2xx response is
// returned as an *apiv1.Error whose Code callers dispatch on.
package api

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	apiv1 "plabi/api/v1"
)

// Client talks to one plabid server with one bearer token (i.e. as one
// tenant). The zero value is not usable; construct with NewClient.
// Client is safe for concurrent use.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8321".
	BaseURL string
	// Token is the bearer token presented on every tenant request.
	Token string
	// HTTPClient is the transport (http.DefaultClient when nil).
	HTTPClient *http.Client
}

// NewClient returns a client for the server at baseURL authenticating
// with token.
func NewClient(baseURL, token string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/"), Token: token}
}

// Render renders a report under full PLA enforcement. A refusal by
// enforcement surfaces as an *apiv1.Error with Code pla_blocked whose
// Decisions carry the blocking decisions.
func (c *Client) Render(ctx context.Context, tenant string, req apiv1.RenderRequest) (*apiv1.RenderResponse, error) {
	var out apiv1.RenderResponse
	if err := c.do(ctx, http.MethodPost, c.tenantPath(tenant, "render"), req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Check statically checks a report's compliance for a consumer, with no
// data flow.
func (c *Client) Check(ctx context.Context, tenant string, req apiv1.CheckRequest) (*apiv1.CheckResponse, error) {
	var out apiv1.CheckResponse
	if err := c.do(ctx, http.MethodPost, c.tenantPath(tenant, "check"), req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Lint runs the static PLA analyzers: over the tenant's live deployment
// when req.Source is empty, over the supplied standalone document
// otherwise.
func (c *Client) Lint(ctx context.Context, tenant string, req apiv1.LintRequest) (*apiv1.LintResponse, error) {
	var out apiv1.LintResponse
	if err := c.do(ctx, http.MethodPost, c.tenantPath(tenant, "lint"), req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Reports lists the tenant's registered report portfolio.
func (c *Client) Reports(ctx context.Context, tenant string) (*apiv1.ReportsResponse, error) {
	var out apiv1.ReportsResponse
	if err := c.do(ctx, http.MethodGet, c.tenantPath(tenant, "reports"), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Reload asks the server to re-read its manifest and swap changed
// tenant bundles (the client's token must be an admin token). A refusal
// by the policy-change gate surfaces as an *apiv1.Error with Code
// reload_rejected whose Impacts list the privilege expansions; force
// overrides the gate and ships them.
func (c *Client) Reload(ctx context.Context, force bool) (*apiv1.ReloadResponse, error) {
	path := "/admin/reload"
	if force {
		path += "?force=1"
	}
	var out apiv1.ReloadResponse
	if err := c.do(ctx, http.MethodPost, path, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Healthz fetches the unauthenticated liveness document.
func (c *Client) Healthz(ctx context.Context) (*apiv1.HealthResponse, error) {
	var out apiv1.HealthResponse
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

func (c *Client) tenantPath(tenant, op string) string {
	return "/" + apiv1.Version + "/tenants/" + url.PathEscape(tenant) + "/" + op
}

// do issues one request: JSON body out, JSON body in, bearer auth, and
// error-envelope decoding on non-2xx statuses.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("api: marshal request: %w", err)
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return fmt.Errorf("api: build request: %w", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.Token != "" {
		req.Header.Set("Authorization", "Bearer "+c.Token)
	}
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return fmt.Errorf("api: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return fmt.Errorf("api: read response: %w", err)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var env apiv1.ErrorEnvelope
		if jerr := json.Unmarshal(data, &env); jerr == nil && env.Error != nil {
			env.Error.HTTP = resp.StatusCode
			return env.Error
		}
		// Not a /v1 envelope (a proxy in the way, a panic page): still a
		// typed error, so callers dispatch uniformly.
		return &apiv1.Error{
			Code:    apiv1.CodeInternal,
			Message: fmt.Sprintf("non-envelope %d response: %.200s", resp.StatusCode, data),
			HTTP:    resp.StatusCode,
		}
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("api: decode %s response: %w", path, err)
	}
	return nil
}
