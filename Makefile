# Developer entry points. CI (.github/workflows/ci.yml) runs these targets
# across parallel jobs; `make ci` replicates the gating set locally.

GO ?= go
FUZZTIME ?= 30s

.PHONY: build vet test race lint cover bench-smoke bench bench-core bench-compiled bench-delta scale-ceiling bench-scale serve-bench fuzz-smoke chaos ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Static analysis: go vet, the repo's own audit-discipline vet pass
# (plavet: PV001/PV002), plalint over every shipped PLA document and the
# full healthcare deployment (error severity gates the build; the
# scenario's intentionally blocked report stays a warning), and pladiff:
# translation validation (PD000) of every compiled residual program, a
# silent identity diff, and detection of the audit example's known
# hospital allow-* expansion (must exit 1 with PD001 — proves the
# expansion detector works, and pins that the bundle stays expansive).
lint: vet
	$(GO) run ./cmd/plavet .
	$(GO) run ./cmd/plalint docs/sample.pla
	for f in examples/*/policy.pla; do $(GO) run ./cmd/plalint $$f || exit 1; done
	$(GO) run ./cmd/plalint -severity error -healthcare
	$(GO) run ./cmd/pladiff -validate
	$(GO) run ./cmd/pladiff -validate examples/audit/policy.pla
	$(GO) run ./cmd/pladiff - -
	out=$$($(GO) run ./cmd/pladiff -severity error - examples/audit/policy.pla; test $$? -eq 1) || exit 1; \
	echo "$$out" | grep -q 'PD001' || { echo "lint: expected PD001 expansion not detected"; exit 1; }

# Coverage with floors: internal/relation and internal/enforce must stay
# at or above 80% statement coverage (see scripts/cover.sh).
cover:
	bash scripts/cover.sh

# One-iteration pass over EVERY benchmark family: catches bitrot in the
# bench harnesses without paying for a full measurement run. BENCH_OBS
# makes the render benchmarks dump the engine's metrics snapshot.
bench-smoke:
	BENCH_OBS=BENCH_obs.json $(GO) test -run '^$$' -bench . -benchtime=1x .

bench:
	BENCH_OBS=BENCH_obs.json $(GO) test -run '^$$' -bench . -benchtime=2s .

# Full core-kernel measurement run: vectorized vs row-at-a-time vs
# nested-loop vs compiled at 1k/10k/100k, converted to BENCH_core.json
# with the >=5x vectorized and >=1.5x compiled speedup floors enforced.
# The out-of-core families (RenderSegment/JoinSegment/ScanPruned) are
# excluded here — they have their own scale lane below.
bench-core:
	$(GO) test -run '^$$' -bench '^BenchmarkCore(Join(Nested)?|Render(Compiled)?|ETL|Rewrite)$$' -benchtime=5x -benchmem . | tee bench_core.txt
	$(GO) run ./cmd/benchjson -in bench_core.txt -out BENCH_core.json -check -min-compiled 1.5

# Compiled-render family only: the residual-program render against the
# vectorized baseline at all three scales, with the >=1.5x floor at 100k.
bench-compiled:
	$(GO) test -run '^$$' -bench '^BenchmarkCoreRender(Compiled)?$$' -benchtime=5x -benchmem . | tee bench_compiled.txt
	$(GO) run ./cmd/benchjson -in bench_compiled.txt -out BENCH_compiled.json -check-compiled -min-compiled 1.5

# Incremental-refresh lane: stream delta batches through the warehouse
# under background render traffic, in both refresh modes at 1k/10k/100k,
# converted to BENCH_delta.json with the >=5x delta-over-rebuild floor
# and the >=50% plan-cache retention floor enforced at 100k.
bench-delta:
	$(GO) test -run '^$$' -bench '^BenchmarkDeltaRefresh$$' -benchtime=5x -benchmem . | tee bench_delta.txt
	$(GO) run ./cmd/benchjson -in bench_delta.txt -out BENCH_delta.json -suite delta -check-delta

# Memory-ceiling check: stream 1M rows through a SegmentWriter and scan
# them back (pruned select, full scan, aggregation) with the runtime's
# soft memory limit pinned to half the table's in-memory footprint; the
# sampled peak heap must stay under that budget. PLABI_SCALE_10M=1 runs
# the 10M-row variant.
scale-ceiling:
	PLABI_SCALE=1 $(GO) test -run '^TestScaleMemoryCeiling$$' -count=1 -v .

# Out-of-core scale lane: the segment-backed render and join against
# their in-memory twins plus the zone-map pruning scan, at 1M rows,
# converted to BENCH_scale.json with the >=50% pruned-segment floor
# enforced. Two iterations per benchmark keep the 1M lane under a few
# minutes; the numbers feed the README trajectory, not benchstat.
bench-scale:
	PLABI_SCALE=1 $(GO) test -run '^$$' -bench '^BenchmarkCore(RenderSegment|JoinSegment|ScanPruned)$$' -benchtime=2x -benchmem -timeout 40m . | tee bench_scale.txt
	$(GO) run ./cmd/benchjson -in bench_scale.txt -out BENCH_scale.json -suite scale -check-scale -min-prune 0.5

# Serving benchmark: the load harness self-hosts a two-tenant plabid,
# drives a mixed render/check workload and writes BENCH_serve.json.
# Exits non-zero when the (generous) SLO floors are violated — total p99
# above 500ms or error rate above 1%.
serve-bench:
	$(GO) run ./cmd/plabid-load -duration 5s -concurrency 8 \
		-out BENCH_serve.json -slo-p99-ms 500 -slo-error-rate 0.01

# Chaos suite: the healthcare scenario under deterministic fault
# schedules (fixed seed matrix, override with CHAOS_SEEDS=1,2,3) with the
# race detector on. On failure the fault schedule and the audit sink
# contents land in ./chaos-artifacts for offline replay.
chaos:
	CHAOS_ARTIFACT_DIR=./chaos-artifacts $(GO) test -race -run TestChaos ./internal/core -count=1 -v

# Short fuzz campaigns over the SQL parser, the PLA DSL parser and the
# columnar segment decoder; the checked-in corpora under */testdata/fuzz
# replay first.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzParseSelect -fuzztime $(FUZZTIME) ./internal/sql
	$(GO) test -run '^$$' -fuzz FuzzParseFile -fuzztime $(FUZZTIME) ./internal/policy
	$(GO) test -run '^$$' -fuzz FuzzSegmentDecode -fuzztime $(FUZZTIME) ./internal/relation

ci: lint build race chaos bench-smoke scale-ceiling bench-scale cover
