// Command bidemo runs the paper's Fig. 1 outsourcing scenario end to end:
// multi-owner sources, PLAs, guarded ETL, warehouse load, enforced report
// rendering for two consumer roles, and an audit-trail summary with one
// provenance-backed dispute resolution — all through the public plabi API.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"

	"plabi"
)

func main() {
	seed := flag.Int64("seed", 42, "workload seed")
	n := flag.Int("n", 5000, "number of prescriptions")
	showAudit := flag.Bool("audit", false, "dump the full audit log (JSONL)")
	workers := flag.Int("workers", 0, "enforcement workers (0 = one per CPU)")
	showMetrics := flag.Bool("metrics", false, "dump the metrics snapshot (JSON) after the run")
	serve := flag.String("serve", "", "serve /metrics and /debug/pprof on this address after the run (e.g. localhost:6060)")
	doLint := flag.Bool("lint", false, "statically lint the loaded scenario before serving; refuse to start on error-severity findings")
	chaos := flag.String("chaos", "", `fault-injection schedule, e.g. "render.worker:panic:0.05,audit.sink.write:error:0.2:transient"`)
	chaosSeed := flag.Int64("chaos-seed", 1, "fault-injector seed (fixed seed replays the same schedule)")
	failClosed := flag.Bool("fail-closed", false, "block report delivery when the audit sink is unavailable past the retry budget")
	flag.Parse()

	opts := []plabi.Option{plabi.WithWorkers(*workers)}
	if *failClosed {
		opts = append(opts, plabi.WithFailClosed())
	}
	var injector *plabi.FaultInjector
	if *chaos != "" {
		injector = plabi.NewFaultInjector(*chaosSeed)
		if err := injector.EnableSpec(*chaos); err != nil {
			fmt.Fprintln(os.Stderr, "bidemo: -chaos:", err)
			os.Exit(1)
		}
		opts = append(opts, plabi.WithFaultInjector(injector))
	}

	ctx := context.Background()
	e, err := plabi.OpenHealthcare(
		plabi.HealthcareConfig{Seed: *seed, Prescriptions: *n}, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bidemo:", err)
		os.Exit(1)
	}
	if *doLint {
		findings := plabi.Lint(e)
		if len(findings) > 0 {
			if err := plabi.WriteLintText(os.Stderr, findings); err != nil {
				fmt.Fprintln(os.Stderr, "bidemo:", err)
				os.Exit(1)
			}
		}
		if max, ok := plabi.MaxLintSeverity(findings); ok && max >= plabi.LintError {
			fmt.Fprintln(os.Stderr, "bidemo: refusing to start: scenario has error-severity lint findings")
			os.Exit(1)
		}
		fmt.Printf("lint: %d finding(s), none at error severity\n", len(findings))
	}
	for _, name := range []string{"prescriptions", "familydoctor", "drugcost", "labresults", "residents"} {
		if t, ok := e.Table(name); ok {
			fmt.Printf("source %s: %d rows\n", name, t.NumRows())
		}
	}
	fmt.Printf("meta-reports approved: %d\n\n", len(e.MetaReports()))

	consumers := []plabi.Consumer{
		{Name: "ana", Role: "analyst", Purpose: "quality"},
		{Name: "aud", Role: "auditor", Purpose: "quality"},
	}
	for _, c := range consumers {
		fmt.Printf("--- consumer %s (role=%s) ---\n", c.Name, c.Role)
		for _, d := range e.Reports() {
			enf, err := e.Render(ctx, d.ID, c)
			var blocked *plabi.BlockedError
			if errors.As(err, &blocked) {
				fmt.Printf("%s: BLOCKED (%s)\n", d.ID, blocked.Decisions[0].Rule)
				continue
			}
			if err != nil {
				// Under chaos, injected faults, isolated panics and
				// fail-closed audit blocks are expected outcomes, not
				// crashes: report them and keep serving.
				if injector != nil && (errors.Is(err, plabi.ErrInjected) ||
					errors.Is(err, plabi.ErrInternal) || errors.Is(err, plabi.ErrAuditUnavailable)) {
					fmt.Printf("%s: FAILED (%v)\n", d.ID, err)
					continue
				}
				fmt.Fprintln(os.Stderr, "bidemo:", err)
				os.Exit(1)
			}
			fmt.Printf("%s: %d rows, %d cells masked, %d rows suppressed, %d decisions\n",
				d.ID, enf.Table.NumRows(), enf.MaskedCells, enf.SuppressedRows, len(enf.Decisions))
			if d.ID == "drug-consumption" && enf.Table.NumRows() > 0 {
				fmt.Println(plabi.FormatTable(d.Title, enf.Table))
			}
		}
		fmt.Println()
	}

	// Dispute resolution: where does the first drug-consumption number
	// come from, and under which agreements?
	enf, err := e.Render(ctx, "drug-consumption", consumers[0])
	if err == nil && enf.Table.NumRows() > 0 {
		d, derr := e.ResolveDispute(enf.Table, 0, "consumption")
		if derr == nil {
			fmt.Println(d)
		}
	}

	stats := e.CacheStats()
	fmt.Printf("decision cache: %d hits / %d misses (%d entries)\n",
		stats.Hits, stats.Misses, stats.Entries)
	fmt.Printf("audit log: %d events (%d renders, %d transforms, %d violations)\n",
		e.Audit().Len(), len(e.Audit().ByKind("render")),
		len(e.Audit().ByKind("transform")), len(e.Audit().Violations()))
	if injector != nil {
		fmt.Println(injector)
	}
	if *showAudit {
		if err := e.Audit().WriteJSONL(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "bidemo:", err)
			os.Exit(1)
		}
	}
	if *showMetrics {
		if err := e.WriteMetricsJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "bidemo:", err)
			os.Exit(1)
		}
	}
	if *serve != "" {
		fmt.Printf("serving /metrics and /debug/pprof on http://%s\n", *serve)
		if err := http.ListenAndServe(*serve, e.DebugHandler()); err != nil {
			fmt.Fprintln(os.Stderr, "bidemo:", err)
			os.Exit(1)
		}
	}
}
