package anon

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"plabi/internal/relation"
)

func patientTable(n int, seed int64) *relation.Table {
	rng := rand.New(rand.NewSource(seed))
	t := relation.NewBase("patients", relation.NewSchema(
		relation.Col("name", relation.TString),
		relation.Col("age", relation.TInt),
		relation.Col("zip", relation.TString),
		relation.Col("disease", relation.TString),
	))
	diseases := []string{"HIV", "asthma", "diabetes", "flu", "hypertension"}
	for i := 0; i < n; i++ {
		t.AppendVals(
			relation.Str("p"+itoa(i)),
			relation.Int(int64(20+rng.Intn(60))),
			relation.Str("38"+itoa(100+rng.Intn(30))),
			relation.Str(diseases[rng.Intn(len(diseases))]),
		)
	}
	return t
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestKAnonymizeGuarantee(t *testing.T) {
	for _, k := range []int{2, 5, 10, 25} {
		src := patientTable(200, 42)
		out, stats, err := KAnonymize(src, k, []string{"age", "zip"})
		if err != nil {
			t.Fatal(err)
		}
		ok, viol, err := CheckKAnonymity(out, k, []string{"age", "zip"})
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("k=%d: violations %v", k, viol)
		}
		if out.NumRows()+stats.Suppressed != src.NumRows() {
			t.Errorf("k=%d: rows %d + suppressed %d != %d", k, out.NumRows(), stats.Suppressed, src.NumRows())
		}
		if stats.Partitions == 0 {
			t.Errorf("k=%d: no partitions", k)
		}
		if stats.AvgClassSize < float64(k) {
			t.Errorf("k=%d: avg class size %f < k", k, stats.AvgClassSize)
		}
	}
}

func TestKAnonymizePreservesNonQI(t *testing.T) {
	src := patientTable(50, 7)
	out, _, err := KAnonymize(src, 5, []string{"age", "zip"})
	if err != nil {
		t.Fatal(err)
	}
	// Disease values multiset must be preserved (only QI generalized).
	count := func(tb *relation.Table) map[string]int {
		m := map[string]int{}
		for i := range tb.Rows {
			m[tb.Get(i, "disease").S]++
		}
		return m
	}
	cs, co := count(src), count(out)
	for k, v := range cs {
		if co[k] != v {
			t.Errorf("disease %s: %d vs %d", k, v, co[k])
		}
	}
}

func TestKAnonymizeLineagePreserved(t *testing.T) {
	src := patientTable(30, 3)
	out, _, err := KAnonymize(src, 3, []string{"age"})
	if err != nil {
		t.Fatal(err)
	}
	for i := range out.Rows {
		lin := out.RowLineage(i)
		if len(lin) != 1 || lin[0].Table != "patients" {
			t.Fatalf("row %d lineage = %v", i, lin)
		}
	}
}

func TestKAnonymizeSmallInput(t *testing.T) {
	src := patientTable(3, 1)
	out, stats, err := KAnonymize(src, 5, []string{"age"})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 0 || stats.Suppressed != 3 {
		t.Errorf("rows=%d suppressed=%d", out.NumRows(), stats.Suppressed)
	}
}

func TestKAnonymizeErrors(t *testing.T) {
	src := patientTable(10, 1)
	if _, _, err := KAnonymize(src, 1, []string{"age"}); err == nil {
		t.Error("k=1 must fail")
	}
	if _, _, err := KAnonymize(src, 2, []string{"ghost"}); err == nil {
		t.Error("unknown QI must fail")
	}
}

// Property: k-anonymity holds for random inputs across random k.
func TestKAnonymizeProperty(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		k := 2 + int(kRaw%9)
		src := patientTable(60+int(seed%40+40)%40, seed)
		out, _, err := KAnonymize(src, k, []string{"age", "zip"})
		if err != nil {
			return false
		}
		ok, _, err := CheckKAnonymity(out, k, []string{"age", "zip"})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestLDiversity(t *testing.T) {
	src := patientTable(200, 42)
	out, _, err := KAnonymize(src, 10, []string{"age", "zip"})
	if err != nil {
		t.Fatal(err)
	}
	ld, suppressed, err := EnforceLDiversity(out, 2, []string{"age", "zip"}, "disease")
	if err != nil {
		t.Fatal(err)
	}
	ok, err := CheckLDiversity(ld, 2, []string{"age", "zip"}, "disease")
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("l-diversity violated after enforcement")
	}
	if ld.NumRows()+suppressed != out.NumRows() {
		t.Errorf("row accounting: %d + %d != %d", ld.NumRows(), suppressed, out.NumRows())
	}
}

func TestLDiversityDetectsHomogeneous(t *testing.T) {
	tb := relation.NewBase("t", relation.NewSchema(
		relation.Col("age", relation.TString),
		relation.Col("disease", relation.TString),
	))
	tb.AppendVals(relation.Str("[20-30)"), relation.Str("HIV"))
	tb.AppendVals(relation.Str("[20-30)"), relation.Str("HIV"))
	tb.AppendVals(relation.Str("[30-40)"), relation.Str("HIV"))
	tb.AppendVals(relation.Str("[30-40)"), relation.Str("flu"))
	ok, err := CheckLDiversity(tb, 2, []string{"age"}, "disease")
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("homogeneous class must violate 2-diversity")
	}
	out, suppressed, err := EnforceLDiversity(tb, 2, []string{"age"}, "disease")
	if err != nil {
		t.Fatal(err)
	}
	if suppressed != 2 || out.NumRows() != 2 {
		t.Errorf("suppressed=%d rows=%d", suppressed, out.NumRows())
	}
}

func TestHierarchies(t *testing.T) {
	d := DateHierarchy{}
	v := relation.DateYMD(2007, 2, 12)
	cases := []struct {
		level int
		want  string
	}{
		{0, "2007-02-12"}, {1, "2007-02"}, {2, "2007-Q1"}, {3, "2007"}, {4, "*"}, {9, "*"},
	}
	for _, c := range cases {
		if got := d.Generalize(v, c.level).String(); got != c.want {
			t.Errorf("date level %d = %q, want %q", c.level, got, c.want)
		}
	}

	age := NewAgeHierarchy()
	if got := age.Generalize(relation.Int(37), 1).String(); got != "[35-40)" {
		t.Errorf("age level 1 = %q", got)
	}
	if got := age.Generalize(relation.Int(37), 2).String(); got != "[30-40)" {
		t.Errorf("age level 2 = %q", got)
	}
	if got := age.Generalize(relation.Int(37), 5).String(); got != "*" {
		t.Errorf("age beyond max = %q", got)
	}

	zip := PrefixHierarchy{Width: 5}
	if got := zip.Generalize(relation.Str("38122"), 2).String(); got != "381**" {
		t.Errorf("zip level 2 = %q", got)
	}
	if got := zip.Generalize(relation.Str("38122"), 5).String(); got != "*" {
		t.Errorf("zip full = %q", got)
	}

	dis := DefaultHierarchies().For("disease")
	if got := dis.Generalize(relation.Str("HIV"), 1).String(); got != "infectious" {
		t.Errorf("disease level 1 = %q", got)
	}
	if got := dis.Generalize(relation.Str("HIV"), 2).String(); got != "*" {
		t.Errorf("disease level 2 = %q", got)
	}
	if got := dis.Generalize(relation.Str("unknown-disease"), 1).String(); got != "*" {
		t.Errorf("unmapped disease = %q", got)
	}

	// Unconfigured column defaults to suppression.
	if got := DefaultHierarchies().For("nope").Generalize(relation.Str("x"), 1).String(); got != "*" {
		t.Errorf("default hierarchy = %q", got)
	}

	// NULL passes through every hierarchy.
	if !d.Generalize(relation.Null(), 2).IsNull() {
		t.Error("NULL must stay NULL")
	}
}

func TestPseudonymizer(t *testing.T) {
	p := NewPseudonymizer([]byte("secret"))
	a1 := p.Pseudonym(relation.Str("Alice"))
	a2 := p.Pseudonym(relation.Str("Alice"))
	b := p.Pseudonym(relation.Str("Bob"))
	if a1.S != a2.S {
		t.Error("pseudonyms must be stable")
	}
	if a1.S == b.S {
		t.Error("different values must get different pseudonyms")
	}
	if a1.S == "Alice" || len(a1.S) < 10 {
		t.Errorf("pseudonym looks wrong: %q", a1.S)
	}
	other := NewPseudonymizer([]byte("other-key"))
	if other.Pseudonym(relation.Str("Alice")).S == a1.S {
		t.Error("different keys must give different pseudonyms")
	}
	if !p.Pseudonym(relation.Null()).IsNull() {
		t.Error("NULL must stay NULL")
	}
}

func TestPseudonymizeColumnPreservesJoins(t *testing.T) {
	src := patientTable(20, 5)
	p := NewPseudonymizer([]byte("k"))
	out, err := p.PseudonymizeColumn(src, "name")
	if err != nil {
		t.Fatal(err)
	}
	// Distinct count preserved.
	d1 := relation.Distinct(mustProject(t, src, "name"))
	d2 := relation.Distinct(mustProject(t, out, "name"))
	if d1.NumRows() != d2.NumRows() {
		t.Errorf("distinct %d vs %d", d1.NumRows(), d2.NumRows())
	}
}

func mustProject(t *testing.T, tb *relation.Table, cols ...string) *relation.Table {
	t.Helper()
	out, err := relation.ProjectCols(tb, cols...)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSuppressColumn(t *testing.T) {
	src := patientTable(5, 1)
	out, err := SuppressColumn(src, "name")
	if err != nil {
		t.Fatal(err)
	}
	for i := range out.Rows {
		if !out.Get(i, "name").IsNull() {
			t.Error("suppressed column must be NULL")
		}
		if out.Get(i, "age").IsNull() {
			t.Error("other columns must be untouched")
		}
	}
}

func TestGeneralizeColumn(t *testing.T) {
	src := patientTable(5, 1)
	out, err := GeneralizeColumn(src, "age", NewAgeHierarchy(), 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range out.Rows {
		s := out.Get(i, "age").S
		if len(s) == 0 || s[0] != '[' {
			t.Errorf("age not generalized: %q", s)
		}
	}
}

func TestPerturbPreservesSum(t *testing.T) {
	tb := relation.NewBase("costs", relation.NewSchema(
		relation.Col("drug", relation.TString),
		relation.Col("cost", relation.TFloat),
	))
	var want float64
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		c := rng.Float64() * 100
		want += c
		tb.AppendVals(relation.Str("d"+itoa(i)), relation.Float(c))
	}
	out, err := PerturbColumn(tb, "cost", 20, 777)
	if err != nil {
		t.Fatal(err)
	}
	var got float64
	changed := 0
	for i := range out.Rows {
		got += out.Get(i, "cost").F
		if math.Abs(out.Get(i, "cost").F-tb.Get(i, "cost").F) > 1e-9 {
			changed++
		}
	}
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("sum changed: %f vs %f", got, want)
	}
	if changed < 90 {
		t.Errorf("only %d values perturbed", changed)
	}
}

func TestPerturbDeterministic(t *testing.T) {
	src := patientTable(20, 5)
	a, err := PerturbColumn(src, "age", 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PerturbColumn(src, "age", 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rows {
		if a.Get(i, "age").I != b.Get(i, "age").I {
			t.Fatal("perturbation must be deterministic for fixed seed")
		}
	}
}

func TestUnknownColumnError(t *testing.T) {
	src := patientTable(5, 1)
	if _, err := SuppressColumn(src, "ghost"); err == nil {
		t.Error("expected error")
	}
	var ue *UnknownColumnError
	_, err := SuppressColumn(src, "ghost")
	if ue, _ = err.(*UnknownColumnError); ue == nil || ue.Column != "ghost" {
		t.Errorf("error type = %T %v", err, err)
	}
}
