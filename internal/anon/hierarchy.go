// Package anon implements the anonymization techniques the paper's
// source-level release filters rely on (§3, Fig. 2a): k-anonymity via
// Mondrian-style multidimensional generalization with suppression
// (Sweeney [12]), distinct l-diversity (Machanavajjhala et al. [9]),
// per-attribute generalization hierarchies, keyed pseudonymization, and
// aggregate-preserving numeric perturbation (Verykios et al. [13]).
package anon

import (
	"fmt"
	"strings"

	"plabi/internal/relation"
)

// Hierarchy generalizes a value upward through numbered levels: level 0 is
// the raw value and MaxLevel() maps everything to "*".
type Hierarchy interface {
	// Generalize maps v to the given level. Levels beyond MaxLevel clamp.
	Generalize(v relation.Value, level int) relation.Value
	// MaxLevel is the level at which all values collapse to "*".
	MaxLevel() int
}

// DateHierarchy generalizes dates: 0 day, 1 month, 2 quarter, 3 year, 4 *.
type DateHierarchy struct{}

// MaxLevel implements Hierarchy.
func (DateHierarchy) MaxLevel() int { return 4 }

// Generalize implements Hierarchy.
func (DateHierarchy) Generalize(v relation.Value, level int) relation.Value {
	if v.IsNull() || v.Kind != relation.TDate || level <= 0 {
		return v
	}
	t := v.T
	switch level {
	case 1:
		return relation.Str(fmt.Sprintf("%04d-%02d", t.Year(), int(t.Month())))
	case 2:
		return relation.Str(fmt.Sprintf("%04d-Q%d", t.Year(), (int(t.Month())-1)/3+1))
	case 3:
		return relation.Str(fmt.Sprintf("%04d", t.Year()))
	default:
		return relation.Str("*")
	}
}

// IntRangeHierarchy generalizes integers into progressively wider buckets:
// level i uses width Base*2^(i-1); MaxLevel collapses to "*". The default
// Base 5 matches age-style attributes (5, 10, 20, 40 year bands).
type IntRangeHierarchy struct {
	Base   int
	Levels int
}

// NewAgeHierarchy returns the conventional age hierarchy (5/10/20/40-year
// bands, then *).
func NewAgeHierarchy() IntRangeHierarchy { return IntRangeHierarchy{Base: 5, Levels: 4} }

// MaxLevel implements Hierarchy.
func (h IntRangeHierarchy) MaxLevel() int { return h.Levels + 1 }

// Generalize implements Hierarchy.
func (h IntRangeHierarchy) Generalize(v relation.Value, level int) relation.Value {
	if v.IsNull() || level <= 0 {
		return v
	}
	n, ok := v.AsInt()
	if !ok {
		return v
	}
	if level > h.Levels {
		return relation.Str("*")
	}
	width := int64(h.Base)
	for i := 1; i < level; i++ {
		width *= 2
	}
	lo := (n / width) * width
	if n < 0 && n%width != 0 {
		lo -= width
	}
	return relation.Str(fmt.Sprintf("[%d-%d)", lo, lo+width))
}

// PrefixHierarchy generalizes strings by truncating suffix characters —
// the standard ZIP-code hierarchy. Level i removes i trailing characters.
type PrefixHierarchy struct {
	// Width is the full length of the code (e.g. 5 for ZIP codes).
	Width int
}

// MaxLevel implements Hierarchy.
func (h PrefixHierarchy) MaxLevel() int { return h.Width }

// Generalize implements Hierarchy.
func (h PrefixHierarchy) Generalize(v relation.Value, level int) relation.Value {
	if v.IsNull() || v.Kind != relation.TString || level <= 0 {
		return v
	}
	s := v.S
	if level >= h.Width || level >= len(s) {
		return relation.Str("*")
	}
	keep := len(s) - level
	return relation.Str(s[:keep] + strings.Repeat("*", level))
}

// CategoryHierarchy generalizes categorical values through an explicit
// parent map (e.g. disease -> disease category -> *).
type CategoryHierarchy struct {
	// Parents maps a value to its parent at the next level.
	Parents map[string]string
	// Depth is the number of generalization steps before "*".
	Depth int
}

// MaxLevel implements Hierarchy.
func (h CategoryHierarchy) MaxLevel() int { return h.Depth + 1 }

// Generalize implements Hierarchy.
func (h CategoryHierarchy) Generalize(v relation.Value, level int) relation.Value {
	if v.IsNull() || v.Kind != relation.TString || level <= 0 {
		return v
	}
	if level > h.Depth {
		return relation.Str("*")
	}
	cur := v.S
	for i := 0; i < level; i++ {
		p, ok := h.Parents[cur]
		if !ok {
			return relation.Str("*")
		}
		cur = p
	}
	return relation.Str(cur)
}

// SuppressHierarchy maps every value to "*" at level >= 1.
type SuppressHierarchy struct{}

// MaxLevel implements Hierarchy.
func (SuppressHierarchy) MaxLevel() int { return 1 }

// Generalize implements Hierarchy.
func (SuppressHierarchy) Generalize(v relation.Value, level int) relation.Value {
	if level <= 0 {
		return v
	}
	return relation.Str("*")
}

// HierarchySet maps column names to their generalization hierarchies; the
// per-deployment registry PLA anonymize rules resolve against.
type HierarchySet map[string]Hierarchy

// For returns the hierarchy for a column, defaulting to suppression so a
// generalize rule on an unconfigured column is always safe.
func (h HierarchySet) For(col string) Hierarchy {
	if hier, ok := h[strings.ToLower(col)]; ok {
		return hier
	}
	return SuppressHierarchy{}
}

// DefaultHierarchies returns the hierarchy set for the healthcare
// workload: dates, ages, ZIPs and diseases.
func DefaultHierarchies() HierarchySet {
	return HierarchySet{
		"date": DateHierarchy{},
		"age":  NewAgeHierarchy(),
		"zip":  PrefixHierarchy{Width: 5},
		"disease": CategoryHierarchy{
			Depth: 1,
			Parents: map[string]string{
				"HIV":          "infectious",
				"hepatitis":    "infectious",
				"flu":          "infectious",
				"asthma":       "respiratory",
				"bronchitis":   "respiratory",
				"diabetes":     "metabolic",
				"obesity":      "metabolic",
				"hypertension": "cardiovascular",
				"arrhythmia":   "cardiovascular",
			},
		},
	}
}
