package warehouse

import (
	"strings"
	"testing"

	"plabi/internal/relation"
	"plabi/internal/workload"
)

// wideInput joins the paper's fixtures into the denormalized input a star
// is built from.
func wideInput(t *testing.T) *relation.Table {
	t.Helper()
	p := workload.PrescriptionsFixture()
	c := workload.DrugCostFixture()
	j, err := relation.Join(relation.Rename(p, "p"), relation.Rename(c, "c"),
		relation.Eq(relation.ColRefExpr("p.drug"), relation.ColRefExpr("c.drug")), relation.InnerJoin)
	if err != nil {
		t.Fatal(err)
	}
	out, err := relation.Project(j,
		relation.P("p.patient"), relation.P("p.doctor"), relation.P("p.drug"),
		relation.P("p.disease"), relation.P("p.date"), relation.P("c.cost"))
	if err != nil {
		t.Fatal(err)
	}
	if unq, uerr := out.Schema.Unqualify(); uerr == nil {
		out.Schema = unq
	}
	out.Name = "wide"
	return out
}

func buildTestStar(t *testing.T) *Star {
	t.Helper()
	in := wideInput(t)
	dPatient, err := BuildDimension("patient", in, "patient", nil)
	if err != nil {
		t.Fatal(err)
	}
	dDrug, err := BuildDimension("drug", in, "drug", nil)
	if err != nil {
		t.Fatal(err)
	}
	dDate, err := BuildDateDimension("date", in, "date")
	if err != nil {
		t.Fatal(err)
	}
	star, err := BuildStar("prescriptions", in, []*Dimension{dPatient, dDrug, dDate}, []string{"cost"}, "disease")
	if err != nil {
		t.Fatal(err)
	}
	return star
}

func TestBuildDimension(t *testing.T) {
	in := wideInput(t)
	d, err := BuildDimension("patient", in, "patient", nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.Table.NumRows() != 4 { // Alice, Bob, Chris, Math
		t.Errorf("members = %d", d.Table.NumRows())
	}
	if d.Key != "patient_key" || d.Table.Schema.Index("patient_key") != 0 {
		t.Errorf("schema = %s", d.Table.Schema)
	}
	// Surrogate keys are dense 1..N in sorted member order.
	if d.Table.Get(0, "patient_key").I != 1 || d.Table.Get(0, "patient").S != "Alice" {
		t.Errorf("first member = %v", d.Table.Rows[0])
	}
}

func TestBuildDateDimension(t *testing.T) {
	in := wideInput(t)
	d, err := BuildDateDimension("date", in, "date")
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Levels; len(got) != 4 || got[0] != "date" || got[3] != "year" {
		t.Errorf("levels = %v", got)
	}
	// 2007-02-12 member must have month 2007-2, quarter 2007-Q1, year 2007.
	found := false
	for i := 0; i < d.Table.NumRows(); i++ {
		if d.Table.Get(i, "date").String() == "2007-02-12" {
			found = true
			if d.Table.Get(i, "month").S != "2007-2" || d.Table.Get(i, "quarter").S != "2007-Q1" ||
				d.Table.Get(i, "year").I != 2007 {
				t.Errorf("member = %v", d.Table.Rows[i])
			}
		}
	}
	if !found {
		t.Error("2007-02-12 member missing")
	}
}

func TestBuildStar(t *testing.T) {
	star := buildTestStar(t)
	if star.Fact.NumRows() != 5 {
		t.Errorf("facts = %d", star.Fact.NumRows())
	}
	if !star.Fact.Schema.HasColumn("patient_key") || !star.Fact.Schema.HasColumn("cost") {
		t.Errorf("fact schema = %s", star.Fact.Schema)
	}
	// Every fact keeps lineage to the prescriptions source.
	for i := 0; i < star.Fact.NumRows(); i++ {
		lin := star.Fact.RowLineage(i)
		foundSrc := false
		for _, ref := range lin {
			if ref.Table == "prescriptions" {
				foundSrc = true
			}
		}
		if !foundSrc {
			t.Fatalf("fact %d lineage = %v", i, lin)
		}
	}
	if star.VocabularySize() < 10 {
		t.Errorf("vocabulary = %d", star.VocabularySize())
	}
	if s := star.SchemaSummary(); !strings.Contains(s, "fact_prescriptions") {
		t.Errorf("summary = %s", s)
	}
}

func TestCubeQueryByDrug(t *testing.T) {
	star := buildTestStar(t)
	res, err := star.Query(CubeQuery{
		GroupBy: []string{"drug"},
		Aggs: []relation.AggSpec{
			{Kind: relation.AggCount, As: "consumption"},
			{Kind: relation.AggSum, Col: "cost", As: "total_cost"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]struct{ n, cost int64 }{
		"DH": {1, 60}, "DM": {1, 10}, "DR": {2, 20}, "DV": {1, 30},
	}
	if res.NumRows() != 4 {
		t.Fatalf("rows = %d\n%s", res.NumRows(), res)
	}
	for i := 0; i < res.NumRows(); i++ {
		d := res.Get(i, "drug").S
		w := want[d]
		if res.Get(i, "consumption").I != w.n || res.Get(i, "total_cost").I != w.cost {
			t.Errorf("%s = %v/%v, want %v", d, res.Get(i, "consumption"), res.Get(i, "total_cost"), w)
		}
	}
}

func TestCubeSlice(t *testing.T) {
	star := buildTestStar(t)
	res, err := star.Query(CubeQuery{
		GroupBy: []string{"disease"},
		Slice:   relation.ColEqStr("patient", "Alice"),
		Aggs:    []relation.AggSpec{{Kind: relation.AggCount, As: "n"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 2 { // Alice has HIV and asthma prescriptions
		t.Errorf("rows = %d\n%s", res.NumRows(), res)
	}
}

func TestRollUpDrillDown(t *testing.T) {
	star := buildTestStar(t)
	q := CubeQuery{
		GroupBy: []string{"month"},
		Aggs:    []relation.AggSpec{{Kind: relation.AggCount, As: "n"}},
	}
	up, err := star.RollUp(q, "month")
	if err != nil {
		t.Fatal(err)
	}
	if up.GroupBy[0] != "quarter" {
		t.Errorf("rollup -> %v", up.GroupBy)
	}
	up2, err := star.RollUp(up, "quarter")
	if err != nil {
		t.Fatal(err)
	}
	if up2.GroupBy[0] != "year" {
		t.Errorf("rollup -> %v", up2.GroupBy)
	}
	down, err := star.DrillDown(up, "quarter")
	if err != nil {
		t.Fatal(err)
	}
	if down.GroupBy[0] != "month" {
		t.Errorf("drilldown -> %v", down.GroupBy)
	}
	// Rollup results aggregate consistently: total count is invariant.
	r1, err := star.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := star.Query(up2)
	if err != nil {
		t.Fatal(err)
	}
	sum := func(tb *relation.Table) int64 {
		var s int64
		for i := 0; i < tb.NumRows(); i++ {
			s += tb.Get(i, "n").I
		}
		return s
	}
	if sum(r1) != sum(r2) || sum(r1) != 5 {
		t.Errorf("sums: %d vs %d", sum(r1), sum(r2))
	}
	// Rolling up beyond the top level fails.
	if _, err := star.RollUp(up2, "year"); err == nil {
		t.Error("rollup beyond year must fail")
	}
	// Rolling up an attribute not in the query fails.
	if _, err := star.RollUp(q, "year"); err == nil {
		t.Error("rollup of absent attribute must fail")
	}
}

func TestCubeErrors(t *testing.T) {
	star := buildTestStar(t)
	if _, err := star.Query(CubeQuery{GroupBy: []string{"ghost"}}); err == nil {
		t.Error("unknown attribute must fail")
	}
}

func TestMaterializedView(t *testing.T) {
	star := buildTestStar(t)
	v := NewMaterializedView("by_drug", star, CubeQuery{
		GroupBy: []string{"drug"},
		Aggs:    []relation.AggSpec{{Kind: relation.AggCount, As: "n"}},
	})
	res, err := v.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 4 || res.Name != "by_drug" {
		t.Errorf("rows = %d name = %s", res.NumRows(), res.Name)
	}
	// Cached result is reused until invalidated.
	res2, err := v.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res2 != res {
		t.Error("expected cached result")
	}
	v.Invalidate()
	res3, err := v.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res3 == res {
		t.Error("expected refresh after invalidation")
	}
}

func TestStarAtScale(t *testing.T) {
	ds, err := workload.Generate(workload.DefaultConfig(21))
	if err != nil {
		t.Fatal(err)
	}
	j, err := relation.Join(relation.Rename(ds.Prescriptions, "p"), relation.Rename(ds.DrugCost, "c"),
		relation.Eq(relation.ColRefExpr("p.drug"), relation.ColRefExpr("c.drug")), relation.InnerJoin)
	if err != nil {
		t.Fatal(err)
	}
	in, err := relation.Project(j, relation.P("p.patient"), relation.P("p.drug"),
		relation.P("p.disease"), relation.P("p.date"), relation.P("c.cost"))
	if err != nil {
		t.Fatal(err)
	}
	if unq, uerr := in.Schema.Unqualify(); uerr == nil {
		in.Schema = unq
	}
	dP, err := BuildDimension("patient", in, "patient", nil)
	if err != nil {
		t.Fatal(err)
	}
	dD, err := BuildDimension("drug", in, "drug", nil)
	if err != nil {
		t.Fatal(err)
	}
	star, err := BuildStar("rx", in, []*Dimension{dP, dD}, []string{"cost"})
	if err != nil {
		t.Fatal(err)
	}
	if star.Fact.NumRows() != ds.Prescriptions.NumRows() {
		t.Errorf("facts = %d, want %d", star.Fact.NumRows(), ds.Prescriptions.NumRows())
	}
	res, err := star.Query(CubeQuery{
		GroupBy: []string{"drug"},
		Aggs:    []relation.AggSpec{{Kind: relation.AggCount, As: "n"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for i := 0; i < res.NumRows(); i++ {
		total += res.Get(i, "n").I
	}
	if total != int64(ds.Prescriptions.NumRows()) {
		t.Errorf("total = %d", total)
	}
}

func TestBuildDimensionWithAttributes(t *testing.T) {
	// A patient dimension carrying a dependent attribute forms a rollup
	// hierarchy patient -> age-band.
	in := relation.NewBase("people", relation.NewSchema(
		relation.Col("patient", relation.TString),
		relation.Col("band", relation.TString),
		relation.Col("x", relation.TInt),
	))
	in.AppendVals(relation.Str("Alice"), relation.Str("[30-40)"), relation.Int(1))
	in.AppendVals(relation.Str("Bob"), relation.Str("[30-40)"), relation.Int(2))
	in.AppendVals(relation.Str("Alice"), relation.Str("[30-40)"), relation.Int(3)) // dup member
	d, err := BuildDimension("patient", in, "patient", []string{"band"})
	if err != nil {
		t.Fatal(err)
	}
	if d.Table.NumRows() != 2 {
		t.Errorf("members = %d", d.Table.NumRows())
	}
	if len(d.Levels) != 2 || d.Levels[1] != "band" {
		t.Errorf("levels = %v", d.Levels)
	}
	if d.LevelIndex("band") != 1 || d.LevelIndex("nope") != -1 {
		t.Error("LevelIndex wrong")
	}
	star, err := BuildStar("s", in, []*Dimension{d}, []string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	// Roll up from patient to band.
	q := CubeQuery{GroupBy: []string{"patient"}, Aggs: []relation.AggSpec{{Kind: relation.AggSum, Col: "x", As: "sx"}}}
	up, err := star.RollUp(q, "patient")
	if err != nil {
		t.Fatal(err)
	}
	res, err := star.Query(up)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 || res.Get(0, "sx").I != 6 {
		t.Errorf("rollup = %v", res.Rows)
	}
}

func TestBuildStarMissingColumns(t *testing.T) {
	in := relation.NewBase("t", relation.NewSchema(relation.Col("a", relation.TString)))
	d, err := BuildDimension("a", in, "a", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildStar("s", in, []*Dimension{d}, []string{"ghost"}); err == nil {
		t.Error("missing measure must fail")
	}
	other := relation.NewBase("o", relation.NewSchema(relation.Col("b", relation.TString)))
	if _, err := BuildStar("s", other, []*Dimension{d}, nil); err == nil {
		t.Error("missing natural key must fail")
	}
	if _, err := BuildDimension("x", in, "ghost", nil); err == nil {
		t.Error("missing natural key column must fail")
	}
}

func TestLateArrivingMember(t *testing.T) {
	// A fact whose member is absent from the dimension gets a NULL key
	// instead of being dropped.
	dimSrc := relation.NewBase("t", relation.NewSchema(relation.Col("k", relation.TString), relation.Col("m", relation.TInt)))
	dimSrc.AppendVals(relation.Str("a"), relation.Int(1))
	d, err := BuildDimension("k", dimSrc, "k", nil)
	if err != nil {
		t.Fatal(err)
	}
	facts := relation.NewBase("t", relation.NewSchema(relation.Col("k", relation.TString), relation.Col("m", relation.TInt)))
	facts.AppendVals(relation.Str("a"), relation.Int(1))
	facts.AppendVals(relation.Str("late"), relation.Int(2))
	star, err := BuildStar("s", facts, []*Dimension{d}, []string{"m"})
	if err != nil {
		t.Fatal(err)
	}
	if star.Fact.NumRows() != 2 {
		t.Fatalf("facts = %d", star.Fact.NumRows())
	}
	if !star.Fact.Get(1, "k_key").IsNull() {
		t.Errorf("late member key = %v", star.Fact.Get(1, "k_key"))
	}
}
