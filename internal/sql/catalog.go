package sql

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"plabi/internal/relation"
)

// ErrUnknownTable is the sentinel wrapped by every "no such table or
// view" failure, so callers can errors.Is across the whole stack.
var ErrUnknownTable = errors.New("unknown table or view")

// Catalog is a thread-safe namespace of base tables and views against which
// statements execute.
type Catalog struct {
	mu     sync.RWMutex
	gen    atomic.Uint64
	tables map[string]*relation.Table
	views  map[string]*SelectStmt
	// epochs counts data versions per table name. Register and Refresh
	// both bump the table's epoch, but only Register moves the global
	// generation: a Refresh is a pure data swap (same name, same schema),
	// so plans keyed on the generation stay valid and consumers that care
	// about data freshness (folded renders, provenance dictionaries)
	// validate against the per-table epoch instead.
	epochs map[string]uint64
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{
		tables: map[string]*relation.Table{},
		views:  map[string]*SelectStmt{},
		epochs: map[string]uint64{},
	}
}

// Generation returns a counter that increases on every catalog mutation
// (table or view registration/removal). Plan and decision caches key on it
// to invalidate when the schema landscape changes.
func (c *Catalog) Generation() uint64 { return c.gen.Load() }

// Register adds or replaces a base table under its own name.
func (c *Catalog) Register(t *relation.Table) {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(t.Name)
	c.tables[key] = t
	c.epochs[key]++
	c.gen.Add(1)
}

// Refresh replaces the data of an already-registered table with a new
// version of the same relation (same name, same schema), bumping only the
// table's epoch — not the global generation. Incremental ETL uses it to
// commit a delta: cached plans survive, and epoch-validating consumers
// (folded renders) recompute only when a table in their read set moved.
func (c *Catalog) Refresh(t *relation.Table) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(t.Name)
	old, ok := c.tables[key]
	if !ok {
		return fmt.Errorf("sql: refresh of unregistered table %q", t.Name)
	}
	if !old.Schema.Equal(t.Schema) {
		return fmt.Errorf("sql: refresh of %q changes schema (%s -> %s); use Register", t.Name, old.Schema, t.Schema)
	}
	c.tables[key] = t
	c.epochs[key]++
	return nil
}

// Epoch returns the data epoch of one table (0 for unknown names).
func (c *Catalog) Epoch(name string) uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.epochs[strings.ToLower(name)]
}

// EpochsFor snapshots the data epochs of the named tables. Unknown names
// report epoch 0, so read sets mentioning views or not-yet-registered
// tables compare stably.
func (c *Catalog) EpochsFor(names []string) map[string]uint64 {
	out := make(map[string]uint64, len(names))
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, n := range names {
		key := strings.ToLower(n)
		out[key] = c.epochs[key]
	}
	return out
}

// RegisterView adds or replaces a named view.
func (c *Catalog) RegisterView(name string, sel *SelectStmt) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.views[strings.ToLower(name)] = sel
	c.gen.Add(1)
}

// DropView removes a view if present.
func (c *Catalog) DropView(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.views, strings.ToLower(name))
	c.gen.Add(1)
}

// Table returns the base table with the given name.
func (c *Catalog) Table(name string) (*relation.Table, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[strings.ToLower(name)]
	return t, ok
}

// View returns the view definition with the given name.
func (c *Catalog) View(name string) (*SelectStmt, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.views[strings.ToLower(name)]
	return v, ok
}

// TableNames returns the sorted base-table names.
func (c *Catalog) TableNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.tables))
	for n := range c.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ViewNames returns the sorted view names.
func (c *Catalog) ViewNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.views))
	for n := range c.views {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// resolve returns the relation for a FROM-clause name: a base table
// directly, or the materialization of a view. Views may reference other
// views; cycles are detected.
func (c *Catalog) resolve(name string, seen map[string]bool) (*relation.Table, error) {
	key := strings.ToLower(name)
	if t, ok := c.Table(key); ok {
		return t, nil
	}
	if v, ok := c.View(key); ok {
		if seen[key] {
			return nil, fmt.Errorf("sql: view cycle through %q", name)
		}
		seen[key] = true
		t, err := c.exec(v, seen)
		if err != nil {
			return nil, fmt.Errorf("sql: view %q: %w", name, err)
		}
		seen[key] = false
		t.Name = key
		return t, nil
	}
	return nil, fmt.Errorf("sql: %w %q", ErrUnknownTable, name)
}

// Exec executes a statement. SELECT returns its result table; CREATE VIEW
// registers the view and returns nil.
func (c *Catalog) Exec(stmt Statement) (*relation.Table, error) {
	switch s := stmt.(type) {
	case *SelectStmt:
		return c.exec(s, map[string]bool{})
	case *CreateViewStmt:
		c.RegisterView(s.Name, s.Select)
		return nil, nil
	default:
		return nil, fmt.Errorf("sql: unsupported statement %T", stmt)
	}
}

// Query parses and executes a SELECT, returning its result.
func (c *Catalog) Query(src string) (*relation.Table, error) {
	sel, err := ParseSelect(src)
	if err != nil {
		return nil, err
	}
	return c.exec(sel, map[string]bool{})
}

// Run parses and executes any statement.
func (c *Catalog) Run(src string) (*relation.Table, error) {
	stmt, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return c.Exec(stmt)
}
