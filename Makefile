# Developer entry points. CI (.github/workflows/ci.yml) runs `make ci`.

GO ?= go

.PHONY: build vet test race bench-smoke bench ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One-iteration benchmark pass: catches bitrot in the bench harness
# without paying for a full measurement run.
bench-smoke:
	$(GO) test -run XXX -bench 'ConcurrentRender' -benchtime=1x .

bench:
	$(GO) test -run XXX -bench . -benchtime=2s .

ci: vet build race bench-smoke
