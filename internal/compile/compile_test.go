package compile

import (
	"strings"
	"testing"

	"plabi/internal/policy"
)

func mustParse(t *testing.T, src string) []*policy.PLA {
	t.Helper()
	plas, err := policy.ParseFile(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return plas
}

// TestCompilePrunesShadowedAllow: an allow fully covered by an
// unconditional deny in a co-governing report-level agreement is pruned
// from the residual rule set (PL001), and the pruning is recorded with
// its reason.
func TestCompilePrunesShadowedAllow(t *testing.T) {
	plas := mustParse(t, `
pla "src" { owner "h"; level source; scope "t";
    allow attribute a; allow attribute b; }
pla "lock" { owner "h"; level report; scope "r"; deny attribute b; }`)
	p := Compile(Input{
		Report: "r", Role: "analyst", Purpose: "quality",
		Composite: policy.Compose(plas...),
	})
	if p.TotalRules != 3 || p.LiveRules != 2 || len(p.Pruned) != 1 {
		t.Fatalf("rules: total=%d live=%d pruned=%d, want 3/2/1", p.TotalRules, p.LiveRules, len(p.Pruned))
	}
	pr := p.Pruned[0]
	if pr.PLA != "src" || pr.Attribute != "b" || !strings.Contains(pr.Reason, "lock") {
		t.Fatalf("pruned rule = %+v", pr)
	}
}

// TestCompileNoCrossScopeShadowing: source-level denies only shadow
// within their own scope — a deny on one table says nothing about a
// same-named attribute of another.
func TestCompileNoCrossScopeShadowing(t *testing.T) {
	plas := mustParse(t, `
pla "one" { owner "h"; level source; scope "t1"; allow attribute x; }
pla "two" { owner "h"; level source; scope "t2"; deny attribute x; }`)
	p := Compile(Input{Report: "r", Composite: policy.Compose(plas...)})
	if len(p.Pruned) != 0 {
		t.Fatalf("cross-scope shadowing assumed: pruned %+v", p.Pruned)
	}
}

// TestCompileBakesMergedThresholds: thresholds merge most-restrictive
// per grouping attribute and arrive pre-sorted; they only survive into
// aggregated programs.
func TestCompileBakesMergedThresholds(t *testing.T) {
	plas := mustParse(t, `
pla "a" { owner "h"; level source; scope "t";
    allow attribute *; aggregate min 3 by patient; }
pla "b" { owner "h"; level report; scope "r"; aggregate min 5 by patient; }`)
	comp := policy.Compose(plas...)

	agg := Compile(Input{Report: "r", Aggregated: true, Composite: comp})
	if len(agg.Thresholds) != 1 {
		t.Fatalf("thresholds = %+v, want one merged entry", agg.Thresholds)
	}
	th := agg.Thresholds[0]
	if th.By != "patient" || th.Min != 5 {
		t.Fatalf("merged threshold = %+v, want min 5 by patient", th)
	}
	if len(th.PLAs) != 2 {
		t.Fatalf("threshold PLAs = %v, want both agreements", th.PLAs)
	}

	flat := Compile(Input{Report: "r", Aggregated: false, Composite: comp})
	if len(flat.Thresholds) != 0 {
		t.Fatalf("non-aggregated program carries thresholds: %+v", flat.Thresholds)
	}
}

// TestExplainDeterministic: Explain output is stable across calls and
// names every section the docs promise.
func TestExplainDeterministic(t *testing.T) {
	plas := mustParse(t, `
pla "src" { owner "h"; level source; scope "t";
    allow attribute *; aggregate min 2 by patient; }`)
	p := Compile(Input{
		Report: "r", Role: "analyst", Purpose: "quality",
		Aggregated: true,
		Composite:  policy.Compose(plas...),
		Columns: []ColumnPlan{
			{Name: "drug"},
			{Name: "n", Aggregate: true},
		},
	})
	out := p.Explain()
	if out != p.Explain() {
		t.Fatal("Explain is not deterministic")
	}
	for _, want := range []string{
		"residual program r (role analyst, purpose quality)",
		"generations:",
		"governing PLAs (1): src",
		"rules: 1 total, 1 live, 0 pruned (PL001)",
		`min 2 by "patient"`,
		"row filters: none",
		"n: aggregate (threshold-governed)",
		"pipeline: exec -> thresholds -> mask -> fold(result)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain output missing %q:\n%s", want, out)
		}
	}
}

// TestExplainStaticVerdictShortCircuits: a program with folded verdicts
// explains as a compile-time constant and omits the pipeline line.
func TestExplainStaticVerdictShortCircuits(t *testing.T) {
	plas := mustParse(t, `
pla "src" { owner "h"; level source; scope "t"; deny attribute x; }`)
	p := Compile(Input{
		Report:    "r",
		Composite: policy.Compose(plas...),
		Static: []Verdict{{
			Outcome: "block", Rule: "attribute-access", Subject: "x",
			Detail: "denied", PLAs: []string{"src"},
		}},
	})
	out := p.Explain()
	if !strings.Contains(out, "render is a compile-time constant") {
		t.Fatalf("static fold not explained:\n%s", out)
	}
	if strings.Contains(out, "pipeline:") {
		t.Fatalf("static program still prints a pipeline:\n%s", out)
	}
}
