// Package plabi is a from-scratch Go reproduction of "Engineering
// Privacy Requirements in Business Intelligence Applications" (Chiasera,
// Casati, Daniel, Velegrakis — SDM 2008): a privacy-aware BI engine in
// which Privacy Level Agreements elicited from data-source owners are
// modeled, enforced, tested and audited at four levels of the BI stack —
// sources, warehouse/ETL, meta-reports, and delivered reports.
//
// The entry point is internal/core.Engine; see README.md for the tour,
// DESIGN.md for the system inventory, and EXPERIMENTS.md for the
// paper-claim vs measured results. The root package holds the benchmark
// harness (bench_test.go), one benchmark per experiment.
package plabi
