package lint

import (
	"fmt"
	"strings"

	"plabi/internal/policy"
)

// conflicts (PL002) surfaces explicit allow/deny disagreements between
// agreements that co-govern the same data — per scope group, and (when
// reports are available) across levels through each report's runtime
// composite. The composition semantics resolve these restrictively, but
// a conflict means two owners agreed to contradictory things with no
// tiebreaker: §2 challenge ii says the requirements engineer must see it.
type conflicts struct{}

func init() { Register(conflicts{}) }

func (conflicts) Code() string { return "PL002" }
func (conflicts) Name() string { return "conflicting-plas" }
func (conflicts) Doc() string {
	return "Explicit allow in one PLA vs explicit deny in another on the same attribute/" +
		"role, join partner or integration beneficiary, with no tiebreaker: the runtime " +
		"denies, but the disagreement needs re-elicitation."
}

func (conflicts) Run(p *Pass) []Finding {
	var out []Finding
	seen := map[string]bool{}
	emit := func(level policy.Level, cs []policy.Conflict) {
		for _, c := range cs {
			key := fmt.Sprintf("%s|%s|%s|%s", c.Kind, c.Subject, c.AllowBy, c.DenyBy)
			if seen[key] {
				continue
			}
			seen[key] = true
			out = append(out, Finding{
				Code: "PL002", Severity: SevError, Level: level,
				Pos:     allowRulePos(p, c),
				Subject: c.Subject,
				Message: fmt.Sprintf("%s conflict on %q: allowed by PLA %q, denied by PLA %q with no tiebreaker (the runtime resolves restrictively — re-elicit)",
					c.Kind, c.Subject, c.AllowBy, c.DenyBy),
				PLAs: []string{c.AllowBy, c.DenyBy},
			})
		}
	}
	for _, g := range p.scopeGroups() {
		emit(g.level, policy.Compose(g.plas...).Conflicts)
	}
	// Cross-level conflicts show up in the composite a report actually
	// renders under.
	if p.Catalog != nil {
		for _, def := range p.Reports {
			comp, _, err := p.enforcer().CompositeFor(def)
			if err != nil {
				continue
			}
			emit(policy.LevelReport, comp.Conflicts)
		}
	}
	return out
}

// allowRulePos locates the allowing rule of a conflict for the finding
// position.
func allowRulePos(p *Pass, c policy.Conflict) policy.Pos {
	pla, ok := p.Registry.ByID(c.AllowBy)
	if !ok {
		return policy.Pos{}
	}
	subject := c.Subject
	if i := strings.IndexByte(subject, '/'); i >= 0 {
		subject = subject[:i] // access keys are "attr" or "attr/role"
	}
	switch c.Kind {
	case "access":
		for _, r := range pla.Access {
			if r.Effect == policy.Allow && strings.EqualFold(r.Attribute, subject) {
				return r.Pos
			}
		}
	case "join":
		for _, r := range pla.Joins {
			if r.Effect == policy.Allow && strings.EqualFold(r.Other, subject) {
				return r.Pos
			}
		}
	case "integration":
		for _, r := range pla.Integrations {
			if r.Effect == policy.Allow && strings.EqualFold(r.Beneficiary, subject) {
				return r.Pos
			}
		}
	}
	return pla.Pos
}
