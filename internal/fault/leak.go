package fault

import (
	"fmt"
	"runtime"
	"strings"
	"time"
)

// TestingT is the subset of *testing.T the leak checker needs, kept as
// a local interface so importing fault does not pull the testing
// package into production binaries.
type TestingT interface {
	Helper()
	Errorf(format string, args ...any)
}

// CheckLeaks snapshots the running goroutines and returns a function
// that fails t if goroutines created afterwards are still running when
// it is called. Use it at the top of concurrency tests:
//
//	defer fault.CheckLeaks(t)()
//
// The check retries for up to two seconds before reporting, so
// goroutines legitimately draining (worker pools between wg.Wait and
// return) are not false positives.
func CheckLeaks(t TestingT) func() {
	t.Helper()
	before := goroutineStacks()
	return func() {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		var leaked []string
		for {
			leaked = leakedSince(before)
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("fault: %d leaked goroutine(s):\n%s", len(leaked), strings.Join(leaked, "\n---\n"))
	}
}

// leakedSince returns the interesting goroutine stacks running now that
// were not running at the snapshot.
func leakedSince(before map[string]string) []string {
	var leaked []string
	for id, stack := range goroutineStacks() {
		if _, ok := before[id]; !ok {
			leaked = append(leaked, stack)
		}
	}
	return leaked
}

// goroutineStacks returns the stacks of every interesting goroutine,
// keyed by goroutine id (a pre-existing goroutine keeps its id across
// snapshots), skipping the runtime's and the test framework's own
// goroutines.
func goroutineStacks() map[string]string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	out := map[string]string{}
	for _, g := range strings.Split(string(buf), "\n\n") {
		if g == "" || !interestingStack(g) {
			continue
		}
		header, _, _ := strings.Cut(g, "\n")
		id, _, _ := strings.Cut(strings.TrimPrefix(header, "goroutine "), " ")
		out[fmt.Sprintf("g%s", id)] = g
	}
	return out
}

// interestingStack filters out the goroutines every Go test run owns:
// the test framework's runners, the runtime's helpers, and this
// checker's own caller.
func interestingStack(g string) bool {
	for _, skip := range []string{
		"testing.RunTests",
		"testing.(*T).Run",
		"testing.(*M).",
		"testing.runFuzzing",
		"testing.tRunner",
		"runtime.gc",
		"runtime.MHeap_Scavenger",
		"signal.signal_recv",
		"runtime.ensureSigM",
		"(*loggingT).flushDaemon",
		"goroutine in C code",
	} {
		if strings.Contains(g, skip) {
			return false
		}
	}
	return true
}
